/**
 * @file
 * Wide bit-plane word configuration for the frame sampler.
 *
 * The bit-sliced simulator historically processed exactly 64 shots
 * per pass (one machine word).  This header generalizes the word to
 * a configurable number of 64-bit lanes: a "plane" of lanes * 64
 * Bernoulli trials is drawn in one call, frames are lanes words per
 * qubit, and one pass over the circuit simulates lanes * 64 shots.
 * Wider planes amortize both the per-instruction dispatch cost and
 * the at-least-one-RNG-draw-per-plane floor of the sparse Bernoulli
 * sampler (see Rng::bernoulliPlane), which is where the throughput
 * win over the 64-bit path comes from; building the library with
 * -DTRAQ_ENABLE_AVX2=ON additionally lets the 4-lane plane ops
 * compile to single 256-bit vector instructions (the default build
 * stays on the portable x86-64 baseline).
 *
 * Two backends are exposed:
 *  - Scalar64: the portable one-lane path (64 shots per batch);
 *  - Wide:     kWideWordLanes lanes (256-bit planes by default).
 *
 * Selection is per run: engines take a WordBackend option whose Auto
 * value defers to the TRAQ_WORD_BACKEND environment variable ("64" /
 * "scalar" vs "256" / "wide"), defaulting to Wide.  Each backend is
 * individually deterministic — for a fixed backend, any thread count
 * reproduces the single-thread tallies bit-identically — but the two
 * backends consume randomness in different orders, so they agree
 * statistically, not bit-for-bit (and exactly on deterministic
 * circuits).
 *
 * Building with -DTRAQ_FORCE_WORD64 collapses the wide backend to a
 * single lane so CI can keep both code paths green from one test
 * suite.
 */

#ifndef TRAQ_COMMON_WORD_HH
#define TRAQ_COMMON_WORD_HH

namespace traq {

/** Lanes (64-bit words) per sampling plane of the wide backend. */
#ifdef TRAQ_FORCE_WORD64
inline constexpr unsigned kWideWordLanes = 1;
#else
inline constexpr unsigned kWideWordLanes = 4; //!< 256-bit planes
#endif

/** Bit-plane backend selector for sampling engines. */
enum class WordBackend
{
    Auto,     //!< TRAQ_WORD_BACKEND env var, else Wide
    Scalar64, //!< portable one-lane path: 64 shots per batch
    Wide,     //!< kWideWordLanes lanes per batch
};

/**
 * Resolve Auto against the TRAQ_WORD_BACKEND environment variable
 * ("64"/"scalar" -> Scalar64, "256"/"wide" -> Wide, unset or
 * unrecognized -> Wide).  Scalar64 and Wide pass through unchanged.
 */
WordBackend resolveWordBackend(WordBackend requested);

/** Lanes per plane for a resolved backend (Auto is resolved first). */
unsigned wordBackendLanes(WordBackend backend);

/** Short human-readable backend name ("scalar64" / "wide256"...). */
const char *wordBackendName(WordBackend backend);

} // namespace traq

#endif // TRAQ_COMMON_WORD_HH
