/**
 * @file
 * ASCII table rendering for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figure
 * data series; this helper renders aligned, pipe-separated tables that
 * read well both in a terminal and when pasted into EXPERIMENTS.md.
 */

#ifndef TRAQ_COMMON_TABLE_HH
#define TRAQ_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace traq {

/** Column-aligned ASCII table builder. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row of pre-formatted cells. */
    void addRow(std::vector<std::string> cells);

    /** Render to a string with a header separator line. */
    std::string str() const;

    /** Render and write to stdout. */
    void print() const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

// All formatters are total and platform-stable: non-finite inputs
// render as "nan" / "inf" / "-inf" (never libc-specific spellings),
// negative zero as zero, and negative durations with a leading '-',
// so serialized sweep output is byte-identical across runs.

/** Fixed-notation formatting with the given number of decimals. */
std::string fmtF(double v, int decimals = 2);

/** Scientific notation with the given number of significant digits. */
std::string fmtE(double v, int sig = 2);

/** Engineering-style human format: 19.2M, 5.6 days, etc. */
std::string fmtSi(double v, int decimals = 1);

/** Format a duration in seconds as the most natural unit. */
std::string fmtDuration(double seconds);

} // namespace traq

#endif // TRAQ_COMMON_TABLE_HH
