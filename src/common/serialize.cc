#include "src/common/serialize.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace traq {

std::string
fmtRoundTrip(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    if (v == 0.0)
        return "0";
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc()) {
        // Unreachable with a 64-byte buffer; keep a safe fallback.
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return buf;
    }
    return std::string(buf, ptr);
}

std::string
jsonNumber(double v)
{
    // Non-finite values travel as quoted tags so the JSON encoding
    // and canonicalKey agree on one spelling (json::Value::
    // asNumberOrTag accepts exactly these on the way back in).
    if (!std::isfinite(v))
        return jsonQuote(fmtRoundTrip(v));
    return fmtRoundTrip(v);
}

std::string
jsonQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
csvField(std::string_view s)
{
    if (s.find_first_of(",\"\n\r") == std::string_view::npos)
        return std::string(s);
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace traq
