#include "src/common/table.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/assert.hh"

namespace traq {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    TRAQ_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    TRAQ_REQUIRE(cells.size() == headers_.size(),
                 "Table row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::ostringstream os;
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c];
            for (std::size_t i = row[c].size(); i < widths[c]; ++i)
                os << ' ';
            os << " |";
        }
        os << "\n";
        return os.str();
    };

    std::ostringstream out;
    out << renderRow(headers_);
    out << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
        for (std::size_t i = 0; i < widths[c] + 2; ++i)
            out << '-';
        out << "|";
    }
    out << "\n";
    for (const auto &row : rows_)
        out << renderRow(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
}

namespace {

/**
 * Platform-independent spelling of non-finite values ("nan", "inf",
 * "-inf"); nullptr for finite input.  snprintf's spelling of these
 * varies by libc ("nan" vs "-nan(0x...)"), which would make
 * serialized sweep output unstable.
 */
const char *
nonFiniteName(double v)
{
    if (std::isnan(v))
        return "nan";
    if (std::isinf(v))
        return v > 0 ? "inf" : "-inf";
    return nullptr;
}

/** Map negative zero to zero so "-0.00" never appears in tables. */
double
normalizeZero(double v)
{
    return v == 0.0 ? 0.0 : v;
}

} // namespace

std::string
fmtF(double v, int decimals)
{
    if (const char *name = nonFiniteName(v))
        return name;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals,
                  normalizeZero(v));
    return buf;
}

std::string
fmtE(double v, int sig)
{
    if (const char *name = nonFiniteName(v))
        return name;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", sig - 1,
                  normalizeZero(v));
    return buf;
}

std::string
fmtSi(double v, int decimals)
{
    if (const char *name = nonFiniteName(v))
        return name;
    const char *suffix = "";
    double scaled = normalizeZero(v);
    double av = std::fabs(v);
    if (av >= 1e9) {
        scaled = v / 1e9;
        suffix = "G";
    } else if (av >= 1e6) {
        scaled = v / 1e6;
        suffix = "M";
    } else if (av >= 1e3) {
        scaled = v / 1e3;
        suffix = "k";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%s", decimals, scaled, suffix);
    return buf;
}

std::string
fmtDuration(double seconds)
{
    if (const char *name = nonFiniteName(seconds))
        return name;
    if (seconds < 0.0)
        return "-" + fmtDuration(-seconds);
    seconds = normalizeZero(seconds);
    char buf[64];
    if (seconds < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
    else if (seconds < 120.0)
        std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
    else if (seconds < 7200.0)
        std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
    else if (seconds < 2.0 * 86400.0)
        std::snprintf(buf, sizeof(buf), "%.1f h", seconds / 3600.0);
    else if (seconds < 730.0 * 86400.0)
        std::snprintf(buf, sizeof(buf), "%.1f days", seconds / 86400.0);
    else
        std::snprintf(buf, sizeof(buf), "%.1f years",
                      seconds / (365.25 * 86400.0));
    return buf;
}

} // namespace traq
