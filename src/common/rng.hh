/**
 * @file
 * Fast deterministic random number generation for Monte-Carlo sampling.
 *
 * Implements xoshiro256** (Blackman & Vigna), which is both much faster
 * than std::mt19937_64 and has a tiny state, making per-thread /
 * per-shot-batch generators cheap.  Determinism matters: all simulator
 * experiments in the test suite seed explicitly so results reproduce.
 */

#ifndef TRAQ_COMMON_RNG_HH
#define TRAQ_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>

namespace traq {

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies the std uniform_random_bit_generator concept so it can be
 * used with <random> distributions when convenient, but also provides
 * branch-light helpers used in the hot sampling loops.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /**
     * Stream-split constructor: derive an independent generator for
     * (seed, stream).  Stream k seeds its xoshiro state from the
     * k-th disjoint 4-word window of the splitmix64 sequence anchored
     * at seed, so streams never share splitmix outputs and stream 0
     * is bit-identical to Rng(seed).  This is what makes sharded
     * Monte-Carlo sampling deterministic for any thread count: shard
     * i always draws from Rng(seed, i) no matter which worker runs it.
     */
    Rng(std::uint64_t seed, std::uint64_t stream);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    std::uint64_t next();

    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Bernoulli trial with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /**
     * 64 independent Bernoulli(p) trials packed into a word
     * (bit i = trial i).  One-word convenience over bernoulliPlane.
     */
    std::uint64_t bernoulliWord(double p);

    /**
     * Fill words[0..numWords) with 64 * numWords independent
     * Bernoulli(p) trials (bit i of word w = trial 64 w + i) — the
     * workhorse of the bit-sliced frame sampler's noise injection.
     *
     * Exact at the edges (p <= 0 -> all zeros, p >= 1 -> all ones;
     * NaN is treated as 0).  Sparse probabilities (p <= 0.25, the
     * regime of physical error rates) are sampled by geometric gap
     * skipping — one uniform draw per *success* plus one per plane,
     * instead of one per trial — which both removes the per-bit
     * 2^-53 quantization floor of threshold comparison (probabilities
     * below ~1e-16 are honored in expectation instead of being
     * rounded up) and makes the draw cost per shot shrink with the
     * plane width.  Dense probabilities (p >= 0.75) sample the
     * complement; the mid range falls back to per-bit thresholds.
     */
    void bernoulliPlane(double p, std::uint64_t *words,
                        std::size_t numWords);

  private:
    std::uint64_t s_[4];
};

} // namespace traq

#endif // TRAQ_COMMON_RNG_HH
