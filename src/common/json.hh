/**
 * @file
 * Minimal, dependency-free JSON layer: a tokenizing recursive-descent
 * parser and an immutable value tree (objects, arrays, numbers,
 * strings, booleans, null).
 *
 * This is the input half of the repo's serialization story — the
 * emitters (jsonNumber / jsonQuote in common/serialize.hh and the
 * est::toJson functions) write JSON by string concatenation; this
 * parser reads it back.  Errors are loud by contract: every malformed
 * input throws FatalError with a line/column diagnostic, never
 * crashes, and never yields a silently-truncated value.  Duplicate
 * object keys are rejected (a request with two "distance" params must
 * not silently drop one).
 *
 * Non-finite policy (shared with jsonNumber and est::canonicalKey):
 * JSON has no nan/inf literals, so non-finite doubles travel as the
 * quoted tags "nan", "inf", "-inf".  Value::asNumberOrTag() accepts
 * either a JSON number or one of exactly those three strings, which
 * makes request -> JSON -> parse -> canonicalKey a fixed point.
 */

#ifndef TRAQ_COMMON_JSON_HH
#define TRAQ_COMMON_JSON_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace traq::json {

/** The JSON value kinds. */
enum class Kind
{
    Null,
    Bool,
    Number,
    String,
    Array,
    Object,
};

/** Kind name for diagnostics ("null", "number", ...). */
std::string_view kindName(Kind k);

/**
 * One parsed JSON value.  Object members are kept sorted by key
 * (the parser rejects duplicates), so dump() output is canonical and
 * two equivalent objects serialize identically.
 */
class Value
{
  public:
    using Array = std::vector<Value>;
    using Member = std::pair<std::string, Value>;
    /** Members sorted by key, unique. */
    using Object = std::vector<Member>;

    /** Constructs null. */
    Value() = default;

    static Value null() { return Value(); }
    static Value boolean(bool b) { return Value(Repr(b)); }
    static Value number(double v) { return Value(Repr(v)); }
    static Value string(std::string s)
    { return Value(Repr(std::move(s))); }
    static Value array(Array a) { return Value(Repr(std::move(a))); }
    /** Sorts members and rejects duplicate keys (FatalError). */
    static Value object(Object members);

    Kind kind() const;

    bool isNull() const { return kind() == Kind::Null; }
    bool isBool() const { return kind() == Kind::Bool; }
    bool isNumber() const { return kind() == Kind::Number; }
    bool isString() const { return kind() == Kind::String; }
    bool isArray() const { return kind() == Kind::Array; }
    bool isObject() const { return kind() == Kind::Object; }

    /** @name Checked accessors; throw FatalError on kind mismatch. */
    /// @{
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;
    /// @}

    /**
     * Number under the repo non-finite policy: a JSON number, or one
     * of the quoted tags "nan" / "inf" / "-inf" (what jsonNumber
     * emits for non-finite doubles).  Any other value throws
     * FatalError.
     */
    double asNumberOrTag() const;

    /** Member lookup; nullptr when absent.  Requires an object. */
    const Value *find(std::string_view key) const;

    /** Member lookup; throws FatalError when absent. */
    const Value &at(std::string_view key) const;

    /**
     * Canonical re-serialization: members sorted, numbers via
     * jsonNumber (non-finite as quoted tags), strings via jsonQuote,
     * no whitespace.  parse(dump(v)) reproduces v exactly.
     */
    std::string dump() const;

  private:
    using Repr = std::variant<std::monostate, bool, double,
                              std::string, Array, Object>;

    explicit Value(Repr repr) : repr_(std::move(repr)) {}

    Repr repr_;
};

/** Parser limits; the defaults are generous for request traffic. */
struct ParseLimits
{
    /** Maximum container nesting depth before FatalError. */
    std::size_t maxDepth = 96;
};

/**
 * Parse one complete JSON document.  The whole input must be
 * consumed (trailing non-whitespace is an error).  Throws FatalError
 * with a "line L, column C" diagnostic on any malformed input.
 */
Value parse(std::string_view text, const ParseLimits &limits = {});

} // namespace traq::json

#endif // TRAQ_COMMON_JSON_HH
