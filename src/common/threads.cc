#include "src/common/threads.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>

#include "src/common/assert.hh"

namespace traq {

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("TRAQ_THREADS")) {
        // Same loudness contract as TRAQ_WORD_BACKEND /
        // TRAQ_PREDECODE: an unparseable value throws instead of
        // silently falling back to hardware concurrency (a typo in a
        // determinism harness must not quietly change the run).
        // Unset or empty still means "use the hardware".
        if (*env != '\0') {
            errno = 0;
            char *end = nullptr;
            const long v = std::strtol(env, &end, 10);
            TRAQ_REQUIRE(
                end != env && *end == '\0' && errno != ERANGE &&
                    v > 0 &&
                    v <= std::numeric_limits<unsigned>::max(),
                "TRAQ_THREADS must be a positive integer, got '" +
                    std::string(env) + "'");
            return static_cast<unsigned>(v);
        }
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace traq
