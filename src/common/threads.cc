#include "src/common/threads.hh"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace traq {

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("TRAQ_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
    }
    return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace traq
