#include "src/common/math.hh"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hh"

namespace traq {

double
pXor(double a, double b)
{
    return a * (1.0 - b) + b * (1.0 - a);
}

double
pOr(double a, double b)
{
    return 1.0 - (1.0 - a) * (1.0 - b);
}

double
pClamp(double p)
{
    return std::clamp(p, 0.0, 1.0);
}

double
pAtLeastOnceOf(double p, double n)
{
    if (p <= 0.0 || n <= 0.0)
        return 0.0;
    if (p >= 1.0)
        return 1.0;
    return -std::expm1(n * std::log1p(-p));
}

int
ceilOdd(double x)
{
    int v = static_cast<int>(std::ceil(x));
    if (v < 3)
        v = 3;
    if (v % 2 == 0)
        ++v;
    return v;
}

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    TRAQ_ASSERT(b > 0, "ceilDiv divisor must be positive");
    TRAQ_ASSERT(a >= 0, "ceilDiv numerator must be non-negative");
    return (a + b - 1) / b;
}

std::int64_t
roundUp(std::int64_t x, std::int64_t m)
{
    return ceilDiv(x, m) * m;
}

double
log2d(double x)
{
    TRAQ_ASSERT(x > 0.0, "log2d of non-positive value");
    return std::log2(x);
}

double
binomialCoeff(int n, int k)
{
    if (k < 0 || k > n)
        return 0.0;
    k = std::min(k, n - k);
    double r = 1.0;
    for (int i = 1; i <= k; ++i)
        r = r * (n - k + i) / i;
    return r;
}

double
pOddOf(double p, double n)
{
    if (p <= 0.0 || n <= 0.0)
        return 0.0;
    double q = 1.0 - 2.0 * std::clamp(p, 0.0, 1.0);
    // (1 - q^n) / 2, with q^n via exp for fractional n.
    double qn = (q <= 0.0) ? ((q == 0.0) ? 0.0 : std::pow(q, n))
                           : std::exp(n * std::log(q));
    return 0.5 * (1.0 - qn);
}

double
interp(const std::vector<double> &xs, const std::vector<double> &ys,
       double x)
{
    TRAQ_ASSERT(xs.size() == ys.size() && !xs.empty(),
                "interp needs equal-size non-empty tables");
    if (x <= xs.front())
        return ys.front();
    if (x >= xs.back())
        return ys.back();
    auto it = std::upper_bound(xs.begin(), xs.end(), x);
    std::size_t hi = static_cast<std::size_t>(it - xs.begin());
    std::size_t lo = hi - 1;
    double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    return ys[lo] + t * (ys[hi] - ys[lo]);
}

} // namespace traq
