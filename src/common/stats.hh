/**
 * @file
 * Statistics helpers for Monte-Carlo experiments.
 *
 * Logical-error-rate estimates are binomial proportions from decoder
 * shot counts; we report Wilson score intervals, which behave sensibly
 * at the low failure counts typical of below-threshold sampling.
 */

#ifndef TRAQ_COMMON_STATS_HH
#define TRAQ_COMMON_STATS_HH

#include <cstdint>
#include <vector>

namespace traq {

/** Binomial proportion estimate with a Wilson confidence interval. */
struct Proportion
{
    std::uint64_t hits = 0;      //!< observed successes (failures).
    std::uint64_t shots = 0;     //!< total trials.
    double mean = 0.0;           //!< hits / shots.
    double lo = 0.0;             //!< Wilson interval lower bound.
    double hi = 0.0;             //!< Wilson interval upper bound.
};

/** Wilson score interval at z standard deviations (default ~95%). */
Proportion wilson(std::uint64_t hits, std::uint64_t shots,
                  double z = 1.96);

/**
 * Mergeable shot tally for sharded Monte-Carlo runs.
 *
 * Each shard accumulates its own Tally; merging is pure integer
 * addition, so the combined result is independent of shard-to-worker
 * assignment and merge order — the property the deterministic
 * multithreaded engine relies on.  Interval math (wilson) happens
 * only after the final merge.
 */
struct Tally
{
    std::uint64_t shots = 0;     //!< decoded trials.
    std::uint64_t anyHits = 0;   //!< trials where any bin hit.
    std::uint64_t weight = 0;    //!< generic accumulator (defects).
    std::uint64_t aux = 0;       //!< generic accumulator (fallbacks).
    std::uint64_t aux2 = 0;      //!< generic accumulator (predecodes).
    std::uint64_t aux3 = 0;      //!< generic accumulator (heralds).
    std::uint64_t aux4 = 0;      //!< generic accumulator (memo hits).
    std::vector<std::uint64_t> binHits; //!< per-bin hit counts.

    /** Size binHits (idempotent; sizes must agree when merging). */
    void ensureBins(std::size_t n);

    /** Add another tally's counts into this one. */
    Tally &merge(const Tally &other);

    /** Wilson proportion for one bin. */
    Proportion binProportion(std::size_t bin, double z = 1.96) const;

    /** Wilson proportion for the any-bin-hit count. */
    Proportion anyProportion(double z = 1.96) const;
};

/** Running mean / variance accumulator (Welford). */
class RunningStats
{
  public:
    void add(double x);
    std::uint64_t count() const { return n_; }
    double mean() const { return mean_; }
    /** Sample variance (n-1 denominator); 0 when n < 2. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Simple least-squares line fit y = a + b x; returns {a, b}. */
struct LineFit
{
    double intercept = 0.0;
    double slope = 0.0;
    double r2 = 0.0;
};

LineFit fitLine(const std::vector<double> &xs,
                const std::vector<double> &ys);

} // namespace traq

#endif // TRAQ_COMMON_STATS_HH
