/**
 * @file
 * Statistics helpers for Monte-Carlo experiments.
 *
 * Logical-error-rate estimates are binomial proportions from decoder
 * shot counts; we report Wilson score intervals, which behave sensibly
 * at the low failure counts typical of below-threshold sampling.
 */

#ifndef TRAQ_COMMON_STATS_HH
#define TRAQ_COMMON_STATS_HH

#include <cstdint>
#include <vector>

namespace traq {

/** Binomial proportion estimate with a Wilson confidence interval. */
struct Proportion
{
    std::uint64_t hits = 0;      //!< observed successes (failures).
    std::uint64_t shots = 0;     //!< total trials.
    double mean = 0.0;           //!< hits / shots.
    double lo = 0.0;             //!< Wilson interval lower bound.
    double hi = 0.0;             //!< Wilson interval upper bound.
};

/** Wilson score interval at z standard deviations (default ~95%). */
Proportion wilson(std::uint64_t hits, std::uint64_t shots,
                  double z = 1.96);

/** Running mean / variance accumulator (Welford). */
class RunningStats
{
  public:
    void add(double x);
    std::uint64_t count() const { return n_; }
    double mean() const { return mean_; }
    /** Sample variance (n-1 denominator); 0 when n < 2. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/** Simple least-squares line fit y = a + b x; returns {a, b}. */
struct LineFit
{
    double intercept = 0.0;
    double slope = 0.0;
    double r2 = 0.0;
};

LineFit fitLine(const std::vector<double> &xs,
                const std::vector<double> &ys);

} // namespace traq

#endif // TRAQ_COMMON_STATS_HH
