#include "src/codes/surface_code.hh"

#include <algorithm>

#include "src/common/assert.hh"

namespace traq::codes {

SurfaceCode::SurfaceCode(int distance)
    : d_(distance)
{
    TRAQ_REQUIRE(distance >= 3 && distance % 2 == 1,
                 "surface code distance must be odd and >= 3");

    // Plaquettes P(r, c) cover data qubits
    // {(r,c), (r,c+1), (r+1,c), (r+1,c+1)} clipped to the grid, for
    // r, c in [-1, d-1].  Type is Z when (r+c) is even, X when odd.
    // Boundary rule: top/bottom keep only X plaquettes, left/right
    // keep only Z plaquettes (so logical X runs vertically, logical Z
    // horizontally).
    auto inGrid = [this](int r, int c) {
        return r >= 0 && r < d_ && c >= 0 && c < d_;
    };
    for (int r = -1; r <= d_ - 1; ++r) {
        for (int c = -1; c <= d_ - 1; ++c) {
            bool isX = (((r + c) % 2) + 2) % 2 == 1;
            bool interior =
                r >= 0 && r <= d_ - 2 && c >= 0 && c <= d_ - 2;
            bool keep = interior;
            if (r == -1 && c >= 0 && c <= d_ - 2)
                keep = isX;                     // top boundary
            else if (r == d_ - 1 && c >= 0 && c <= d_ - 2)
                keep = isX;                     // bottom boundary
            else if (c == -1 && r >= 0 && r <= d_ - 2)
                keep = !isX;                    // left boundary
            else if (c == d_ - 1 && r >= 0 && r <= d_ - 2)
                keep = !isX;                    // right boundary
            else if (!interior)
                keep = false;                   // corners
            if (!keep)
                continue;

            Plaquette p;
            p.isX = isX;
            p.cx = 2 * c + 2;
            p.cy = 2 * r + 2;
            // Schedule order: X plaquettes zig-zag horizontally
            // (NW, NE, SW, SE); Z plaquettes vertically
            // (NW, SW, NE, SE).  This orients hook errors
            // perpendicular to the respective logical operators.
            int nw[2] = {r, c}, ne[2] = {r, c + 1};
            int sw[2] = {r + 1, c}, se[2] = {r + 1, c + 1};
            int order[4][2];
            if (isX) {
                order[0][0] = nw[0]; order[0][1] = nw[1];
                order[1][0] = ne[0]; order[1][1] = ne[1];
                order[2][0] = sw[0]; order[2][1] = sw[1];
                order[3][0] = se[0]; order[3][1] = se[1];
            } else {
                order[0][0] = nw[0]; order[0][1] = nw[1];
                order[1][0] = sw[0]; order[1][1] = sw[1];
                order[2][0] = ne[0]; order[2][1] = ne[1];
                order[3][0] = se[0]; order[3][1] = se[1];
            }
            for (int k = 0; k < 4; ++k) {
                if (inGrid(order[k][0], order[k][1])) {
                    p.schedule[k] =
                        static_cast<int>(dataIndex(order[k][0],
                                                   order[k][1]));
                    p.support.push_back(
                        dataIndex(order[k][0], order[k][1]));
                }
            }
            std::sort(p.support.begin(), p.support.end());
            plaq_.push_back(std::move(p));
        }
    }
    TRAQ_ASSERT(plaq_.size() == numAncilla(),
                "plaquette count must be d^2 - 1");

    for (int r = 0; r < d_; ++r)
        lx_.push_back(dataIndex(r, 0));
    for (int c = 0; c < d_; ++c)
        lz_.push_back(dataIndex(0, c));
}

std::uint32_t
SurfaceCode::dataIndex(int row, int col) const
{
    TRAQ_ASSERT(row >= 0 && row < d_ && col >= 0 && col < d_,
                "dataIndex out of range");
    return static_cast<std::uint32_t>(row * d_ + col);
}

std::uint32_t
SurfaceCode::ancillaIndex(std::size_t i) const
{
    TRAQ_ASSERT(i < plaq_.size(), "ancillaIndex out of range");
    return numData() + static_cast<std::uint32_t>(i);
}

} // namespace traq::codes
