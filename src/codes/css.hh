/**
 * @file
 * Generic CSS stabilizer codes over GF(2).
 *
 * Provides validation (commutation), parameter extraction (k via
 * ranks), logical-operator bases, and brute-force distance computation
 * for small codes.  Used to verify the surface-code layout and to
 * define the [[8,3,2]] colour code at the heart of the 8T-to-CCZ
 * factory (Sec. III.6).
 */

#ifndef TRAQ_CODES_CSS_HH
#define TRAQ_CODES_CSS_HH

#include <cstdint>
#include <vector>

#include "src/common/gf2.hh"
#include "src/sim/pauli.hh"

namespace traq::codes {

/** A CSS code defined by X- and Z-check matrices. */
class CssCode
{
  public:
    /**
     * @param hx rows are X-type stabilizers (X on set bits).
     * @param hz rows are Z-type stabilizers.
     * Requires hx * hz^T = 0 over GF(2).
     */
    CssCode(Gf2Matrix hx, Gf2Matrix hz);

    std::size_t numQubits() const { return n_; }
    std::size_t numLogical() const { return k_; }

    const Gf2Matrix &hx() const { return hx_; }
    const Gf2Matrix &hz() const { return hz_; }

    /**
     * Logical X / Z operator bases: k rows each, chosen so that
     * logicalX(i) anticommutes with logicalZ(i) and commutes with
     * logicalZ(j != i) (symplectic pairing).
     */
    const Gf2Matrix &logicalX() const { return lx_; }
    const Gf2Matrix &logicalZ() const { return lz_; }

    /** Logical X_i / Z_i as PauliStrings. */
    sim::PauliString logicalXPauli(std::size_t i) const;
    sim::PauliString logicalZPauli(std::size_t i) const;

    /** Stabilizer row as a PauliString. */
    sim::PauliString stabilizerXPauli(std::size_t row) const;
    sim::PauliString stabilizerZPauli(std::size_t row) const;

    /**
     * Exact code distance by brute force over all Pauli-X and Pauli-Z
     * error patterns; exponential in n, intended for n <= ~16.
     */
    std::size_t bruteForceDistance() const;

  private:
    std::size_t n_;
    std::size_t k_;
    Gf2Matrix hx_;
    Gf2Matrix hz_;
    Gf2Matrix lx_;
    Gf2Matrix lz_;

    void computeLogicals();
    std::size_t minLogicalWeight(const Gf2Matrix &checks,
                                 const Gf2Matrix &logicals) const;
};

/**
 * The [[8,3,2]] colour code on the cube (Campbell's "smallest
 * interesting colour code"), whose transversal T/T^dagger pattern
 * implements a logical CCZ — the non-Clifford workhorse of the
 * 8T-to-CCZ factory.  Qubits are cube vertices indexed by their
 * binary coordinates (b2 b1 b0).
 */
CssCode makeCode832();

/** The rotated surface code as a CssCode (for cross-validation). */
CssCode makeSurfaceCodeCss(int distance);

} // namespace traq::codes

#endif // TRAQ_CODES_CSS_HH
