/**
 * @file
 * Generators for the decoding experiments used to calibrate the
 * paper's logical error model (Sec. III.4).
 *
 * Two families:
 *  - surface-code memory (Z or X basis) over a given number of SE
 *    rounds: the x -> 0 limit of Eq. (4);
 *  - transversal-CNOT circuits between two patches with a configurable
 *    number of CNOT layers per SE round (the "x" of Eq. (4)),
 *    decoded *jointly* (correlated decoding, Refs [17,18]).  The
 *    detector definitions account for stabilizer pullback through the
 *    transversal gates (Z-plaquette detectors of the target patch XOR
 *    in the control patch's previous-round syndrome, and vice versa
 *    for X plaquettes).
 */

#ifndef TRAQ_CODES_EXPERIMENTS_HH
#define TRAQ_CODES_EXPERIMENTS_HH

#include <cstdint>
#include <vector>

#include "src/codes/surface_code.hh"
#include "src/sim/circuit.hh"

namespace traq::codes {

/** Circuit-level depolarizing noise parameters (paper Sec. III.4). */
struct NoiseParams
{
    double p2 = 1e-3;        //!< two-qubit depolarizing after CX
    double p1 = 1e-3;        //!< single-qubit depolarizing after H/S
    double pMeas = 1e-3;     //!< flip before measurement
    double pReset = 1e-3;    //!< flip after reset
    double pIdleData = 1e-3; //!< data depolarizing during meas/reset

    /** Uniform rate p on every channel (the paper's p_phys). */
    static NoiseParams uniform(double p);

    /** All channels off (for determinism checks). */
    static NoiseParams none();
};

/** Decoder-facing metadata emitted alongside a circuit. */
struct CircuitMeta
{
    /** Basis of each detector's ancilla (true = X plaquette). */
    std::vector<std::uint8_t> detectorIsX;
    /** Basis of each logical observable (true = logical X). */
    std::vector<std::uint8_t> observableIsX;
    /**
     * Code patch each detector's ancilla belongs to.  The decode
     * graph uses this to keep hyperedge decomposition patch-local
     * (a cross-patch mechanism created by a transversal CNOT splits
     * into per-patch edges that are *correlated*, not into arbitrary
     * detector pairs).  May be empty for hand-built metadata, in
     * which case every detector is treated as patch 0.
     */
    std::vector<std::int32_t> detectorPatch;
    /**
     * SE round each detector was emitted in (the final
     * data-measurement detectors get the last round + 1).  Drives
     * the windowed decoder's sliding commit/window regions.  May be
     * empty, in which case every detector is round 0.
     */
    std::vector<std::int32_t> detectorRound;
    /** Patch each logical observable lives on (empty = patch 0). */
    std::vector<std::int32_t> observablePatch;
    /** One past the largest detector round (0 if rounds are empty). */
    int numRounds = 0;
};

/** A generated experiment: circuit plus metadata. */
struct Experiment
{
    sim::Circuit circuit;
    CircuitMeta meta;
};

/**
 * Memory experiment: init all-|0> (basis 'Z') or all-|+> ('X'), run
 * `rounds` SE rounds, measure data transversally, with one logical
 * observable (index 0).
 */
Experiment buildMemory(const SurfaceCode &code, char basis, int rounds,
                       const NoiseParams &noise);

/** Parameters of a transversal-CNOT experiment on two patches. */
struct TransversalCnotSpec
{
    int distance = 3;
    int cnotLayers = 4;       //!< total transversal CX layers
    int cnotsPerBatch = 1;    //!< consecutive CX layers per SE block
    int seRoundsPerBatch = 1; //!< SE rounds after each CX batch
    int warmupRounds = 1;     //!< SE rounds after initialization
    bool alternateDirection = true; //!< alternate CX direction per layer
    NoiseParams noise = NoiseParams::uniform(1e-3);
};

/**
 * Two-patch transversal-CNOT experiment in the Z basis; observables 0
 * and 1 are the final logical Z of patch A and patch B.  The effective
 * CNOTs-per-SE-round is cnotsPerBatch / seRoundsPerBatch.
 */
Experiment buildTransversalCnot(const TransversalCnotSpec &spec);

} // namespace traq::codes

#endif // TRAQ_CODES_EXPERIMENTS_HH
