#include "src/codes/css.hh"

#include <limits>

#include "src/codes/surface_code.hh"
#include "src/common/assert.hh"

namespace traq::codes {
namespace {

/** Invert a small square GF(2) matrix (throws if singular). */
Gf2Matrix
invert(const Gf2Matrix &m)
{
    const std::size_t k = m.rows();
    TRAQ_REQUIRE(m.cols() == k, "invert: matrix must be square");
    // Augment [M | I] and row-reduce.
    Gf2Matrix aug(k, 2 * k);
    for (std::size_t r = 0; r < k; ++r) {
        for (std::size_t c = 0; c < k; ++c)
            if (m.get(r, c))
                aug.set(r, c, true);
        aug.set(r, k + r, true);
    }
    std::vector<std::size_t> pivots;
    std::size_t rank = aug.rowReduce(&pivots);
    TRAQ_REQUIRE(rank == k, "invert: singular matrix");
    for (std::size_t r = 0; r < k; ++r)
        TRAQ_REQUIRE(pivots[r] == r, "invert: singular matrix");
    Gf2Matrix inv(k, k);
    for (std::size_t r = 0; r < k; ++r)
        for (std::size_t c = 0; c < k; ++c)
            if (aug.get(r, k + c))
                inv.set(r, c, true);
    return inv;
}

/** Parity of the overlap of two 0/1 vectors. */
int
overlapParity(const std::vector<int> &a, const std::vector<int> &b)
{
    int s = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s ^= (a[i] & b[i]);
    return s;
}

sim::PauliString
toPauli(const std::vector<int> &bits, char kind)
{
    sim::PauliString p(bits.size());
    for (std::size_t q = 0; q < bits.size(); ++q)
        if (bits[q])
            p.setPauli(q, kind);
    return p;
}

} // namespace

CssCode::CssCode(Gf2Matrix hx, Gf2Matrix hz)
    : n_(hx.cols()), hx_(std::move(hx)), hz_(std::move(hz))
{
    TRAQ_REQUIRE(hx_.cols() == hz_.cols(),
                 "CSS matrices must share qubit count");
    // Commutation: every X row overlaps every Z row evenly.
    Gf2Matrix prod = hx_.multiply(hz_.transpose());
    for (std::size_t r = 0; r < prod.rows(); ++r)
        TRAQ_REQUIRE(prod.rowWeight(r) == 0,
                     "CSS checks do not commute");
    std::size_t rx = hx_.rank();
    std::size_t rz = hz_.rank();
    TRAQ_REQUIRE(n_ >= rx + rz, "CSS rank bookkeeping broken");
    k_ = n_ - rx - rz;
    computeLogicals();
}

void
CssCode::computeLogicals()
{
    // Logical X candidates: ker(Hz) modulo rowspace(Hx).
    auto pickLogicals = [this](const Gf2Matrix &kernelOf,
                               const Gf2Matrix &modOut) {
        Gf2Matrix kernel = kernelOf.nullSpace();
        Gf2Matrix accum = modOut;     // grows as logicals are chosen
        Gf2Matrix chosen(0, 0);
        std::size_t baseRank = accum.rank();
        for (std::size_t i = 0;
             i < kernel.rows() && chosen.rows() < k_; ++i) {
            std::vector<int> cand = kernel.rowVector(i);
            Gf2Matrix trial = accum;
            trial.appendRow(cand);
            if (trial.rank() > baseRank) {
                accum = trial;
                baseRank += 1;
                chosen.appendRow(cand);
            }
        }
        TRAQ_ASSERT(chosen.rows() == k_,
                    "failed to extract k logical operators");
        return chosen;
    };
    lx_ = pickLogicals(hz_, hx_);
    lz_ = pickLogicals(hx_, hz_);
    if (k_ == 0)
        return;

    // Symplectic pairing: adjust LZ so that LX_i overlaps LZ_j oddly
    // exactly when i == j.  M = LX LZ^T; LZ' = (M^-1)^T LZ.
    Gf2Matrix m(k_, k_);
    for (std::size_t i = 0; i < k_; ++i)
        for (std::size_t j = 0; j < k_; ++j)
            if (overlapParity(lx_.rowVector(i), lz_.rowVector(j)))
                m.set(i, j, true);
    Gf2Matrix b = invert(m).transpose();
    lz_ = b.multiply(lz_);
}

sim::PauliString
CssCode::logicalXPauli(std::size_t i) const
{
    return toPauli(lx_.rowVector(i), 'X');
}

sim::PauliString
CssCode::logicalZPauli(std::size_t i) const
{
    return toPauli(lz_.rowVector(i), 'Z');
}

sim::PauliString
CssCode::stabilizerXPauli(std::size_t row) const
{
    return toPauli(hx_.rowVector(row), 'X');
}

sim::PauliString
CssCode::stabilizerZPauli(std::size_t row) const
{
    return toPauli(hz_.rowVector(row), 'Z');
}

std::size_t
CssCode::minLogicalWeight(const Gf2Matrix &checks,
                          const Gf2Matrix &logicals) const
{
    // Enumerate all error patterns e over n qubits; keep those in
    // ker(checks) that anticommute with some logical (i.e. act
    // non-trivially on the code space).
    TRAQ_REQUIRE(n_ <= 20, "brute-force distance limited to n <= 20");
    std::size_t best = std::numeric_limits<std::size_t>::max();
    const std::size_t total = std::size_t{1} << n_;
    for (std::size_t mask = 1; mask < total; ++mask) {
        std::size_t w = static_cast<std::size_t>(
            __builtin_popcountll(mask));
        if (w >= best)
            continue;
        std::vector<int> e(n_, 0);
        for (std::size_t q = 0; q < n_; ++q)
            e[q] = (mask >> q) & 1;
        bool inKernel = true;
        for (std::size_t r = 0; r < checks.rows() && inKernel; ++r)
            if (overlapParity(checks.rowVector(r), e))
                inKernel = false;
        if (!inKernel)
            continue;
        bool logical = false;
        for (std::size_t r = 0; r < logicals.rows() && !logical; ++r)
            if (overlapParity(logicals.rowVector(r), e))
                logical = true;
        if (logical)
            best = w;
    }
    return best;
}

std::size_t
CssCode::bruteForceDistance() const
{
    // X-type errors are caught by Z checks and flip Z logicals;
    // Z-type errors are the mirror case.
    std::size_t dx = minLogicalWeight(hz_, lz_);
    std::size_t dz = minLogicalWeight(hx_, lx_);
    return std::min(dx, dz);
}

CssCode
makeCode832()
{
    // Cube vertices 0..7 indexed by binary (b2 b1 b0).
    Gf2Matrix hx = Gf2Matrix::fromRows({
        {1, 1, 1, 1, 1, 1, 1, 1},
    });
    Gf2Matrix hz = Gf2Matrix::fromRows({
        {1, 0, 1, 0, 1, 0, 1, 0},   // face b0 = 0
        {0, 1, 0, 1, 0, 1, 0, 1},   // face b0 = 1
        {1, 1, 0, 0, 1, 1, 0, 0},   // face b1 = 0
        {1, 1, 1, 1, 0, 0, 0, 0},   // face b2 = 0
    });
    return CssCode(std::move(hx), std::move(hz));
}

CssCode
makeSurfaceCodeCss(int distance)
{
    SurfaceCode sc(distance);
    const std::size_t n = sc.numData();
    std::vector<std::vector<int>> xRows, zRows;
    for (const auto &p : sc.plaquettes()) {
        std::vector<int> row(n, 0);
        for (std::uint32_t q : p.support)
            row[q] = 1;
        if (p.isX)
            xRows.push_back(std::move(row));
        else
            zRows.push_back(std::move(row));
    }
    return CssCode(Gf2Matrix::fromRows(xRows),
                   Gf2Matrix::fromRows(zRows));
}

} // namespace traq::codes
