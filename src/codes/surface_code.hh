/**
 * @file
 * Rotated surface code [[d^2, 1, d]] layout and syndrome-extraction
 * circuit generation (Sec. II.3 of the paper).
 *
 * Conventions:
 *  - data qubits D(r, c) with r, c in [0, d);
 *  - logical X is a vertical column of X (connects the X-type top and
 *    bottom boundaries); logical Z is a horizontal row of Z;
 *  - syndrome extraction uses the standard distance-preserving 4-layer
 *    CX schedule (zig-zag order for X plaquettes, N-order for Z
 *    plaquettes) with one ancilla per stabilizer (Fig. 4(a)).
 *
 * Qubit indices are patch-local: data qubits 0..d^2-1 (row-major),
 * ancillas d^2..2d^2-2 (stabilizer order).  Multi-patch circuits place
 * patches at disjoint offsets.
 */

#ifndef TRAQ_CODES_SURFACE_CODE_HH
#define TRAQ_CODES_SURFACE_CODE_HH

#include <cstdint>
#include <vector>

namespace traq::codes {

/** One stabilizer plaquette of the rotated surface code. */
struct Plaquette
{
    bool isX = false;                 //!< X-type (else Z-type)
    /**
     * Data-qubit indices in CX-schedule order; entry -1 means the
     * plaquette has no neighbour in that schedule slot (boundary
     * weight-2 plaquettes).
     */
    int schedule[4] = {-1, -1, -1, -1};
    /** The (<= 4) data qubits in the support, ascending. */
    std::vector<std::uint32_t> support;
    /** Plaquette center coordinates (2*col, 2*row) for diagnostics. */
    int cx = 0;
    int cy = 0;
};

/** Rotated surface code of odd distance d. */
class SurfaceCode
{
  public:
    explicit SurfaceCode(int distance);

    int distance() const { return d_; }
    std::uint32_t numData() const
    { return static_cast<std::uint32_t>(d_) * d_; }
    std::uint32_t numAncilla() const { return numData() - 1; }
    /** Patch-local qubit count (data + ancilla). */
    std::uint32_t numQubits() const { return 2 * numData() - 1; }

    const std::vector<Plaquette> &plaquettes() const { return plaq_; }

    /** Patch-local index of data qubit at (row, col). */
    std::uint32_t dataIndex(int row, int col) const;

    /** Patch-local index of the ancilla for plaquette i. */
    std::uint32_t ancillaIndex(std::size_t i) const;

    /** Data indices of the logical X representative (column 0). */
    const std::vector<std::uint32_t> &logicalX() const { return lx_; }

    /** Data indices of the logical Z representative (row 0). */
    const std::vector<std::uint32_t> &logicalZ() const { return lz_; }

  private:
    int d_;
    std::vector<Plaquette> plaq_;
    std::vector<std::uint32_t> lx_;
    std::vector<std::uint32_t> lz_;
};

} // namespace traq::codes

#endif // TRAQ_CODES_SURFACE_CODE_HH
