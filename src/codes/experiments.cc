#include "src/codes/experiments.hh"

#include <algorithm>

#include "src/common/assert.hh"

namespace traq::codes {

NoiseParams
NoiseParams::uniform(double p)
{
    NoiseParams n;
    n.p2 = n.p1 = n.pMeas = n.pReset = n.pIdleData = p;
    return n;
}

NoiseParams
NoiseParams::none()
{
    return uniform(0.0);
}

namespace {

using sim::Circuit;

/**
 * Builder for multi-patch surface-code circuits with correct detector
 * bookkeeping across transversal gates.
 */
class MultiPatchBuilder
{
  public:
    MultiPatchBuilder(const SurfaceCode &code, int numPatches,
                      const NoiseParams &noise)
        : code_(code), numPatches_(numPatches), noise_(noise),
          lastMeas_(numPatches,
                    std::vector<std::uint64_t>(code.numAncilla(), 0)),
          haveLast_(false)
    {
        for (int p = 0; p < numPatches_; ++p) {
            frameZ_.push_back(1u << p);
            frameX_.push_back(1u << p);
        }
    }

    Circuit &circuit() { return circ_; }
    CircuitMeta &meta() { return meta_; }

    std::uint32_t
    dataQubit(int patch, std::uint32_t local) const
    {
        return static_cast<std::uint32_t>(patch) * code_.numQubits() +
               local;
    }

    std::uint32_t
    ancQubit(int patch, std::size_t plaq) const
    {
        return static_cast<std::uint32_t>(patch) * code_.numQubits() +
               code_.ancillaIndex(plaq);
    }

    /** Initialize all data qubits of all patches in the given basis. */
    void
    initData(char basis)
    {
        initBasis_ = basis;
        std::vector<std::uint32_t> qs;
        for (int p = 0; p < numPatches_; ++p)
            for (std::uint32_t i = 0; i < code_.numData(); ++i)
                qs.push_back(dataQubit(p, i));
        if (basis == 'Z') {
            circ_.append(sim::Gate::R, qs);
            if (noise_.pReset > 0)
                circ_.xError(noise_.pReset, qs);
        } else {
            circ_.append(sim::Gate::RX, qs);
            if (noise_.pReset > 0)
                circ_.zError(noise_.pReset, qs);
        }
        // Ancillas start in |0>.
        std::vector<std::uint32_t> anc;
        for (int p = 0; p < numPatches_; ++p)
            for (std::size_t i = 0; i < code_.plaquettes().size(); ++i)
                anc.push_back(ancQubit(p, i));
        circ_.append(sim::Gate::R, anc);
    }

    /**
     * One SE round on every patch: ancilla prep, 4 CX layers, ancilla
     * measurement, then detector emission (incorporating any pending
     * syndrome-frame terms from transversal gates).
     */
    void
    seRound()
    {
        const auto &plaqs = code_.plaquettes();
        std::vector<std::uint32_t> allAnc, xAnc, allData;
        for (int p = 0; p < numPatches_; ++p) {
            for (std::size_t i = 0; i < plaqs.size(); ++i) {
                allAnc.push_back(ancQubit(p, i));
                if (plaqs[i].isX)
                    xAnc.push_back(ancQubit(p, i));
            }
            for (std::uint32_t i = 0; i < code_.numData(); ++i)
                allData.push_back(dataQubit(p, i));
        }

        // Ancilla preparation (reset noise, basis change for X type).
        if (noise_.pReset > 0)
            circ_.xError(noise_.pReset, allAnc);
        circ_.append(sim::Gate::H, xAnc);
        if (noise_.p1 > 0)
            circ_.depolarize1(noise_.p1, xAnc);

        // Four CX layers.
        for (int layer = 0; layer < 4; ++layer) {
            std::vector<std::uint32_t> pairs;
            for (int p = 0; p < numPatches_; ++p) {
                for (std::size_t i = 0; i < plaqs.size(); ++i) {
                    int dq = plaqs[i].schedule[layer];
                    if (dq < 0)
                        continue;
                    std::uint32_t data = dataQubit(
                        p, static_cast<std::uint32_t>(dq));
                    std::uint32_t anc = ancQubit(p, i);
                    if (plaqs[i].isX) {
                        pairs.push_back(anc);
                        pairs.push_back(data);
                    } else {
                        pairs.push_back(data);
                        pairs.push_back(anc);
                    }
                }
            }
            circ_.append(sim::Gate::CX, pairs);
            if (noise_.p2 > 0)
                circ_.depolarize2(noise_.p2, pairs);
        }

        // Basis restore and measurement.
        circ_.append(sim::Gate::H, xAnc);
        if (noise_.p1 > 0)
            circ_.depolarize1(noise_.p1, xAnc);
        if (noise_.pMeas > 0)
            circ_.xError(noise_.pMeas, allAnc);
        if (noise_.pIdleData > 0)
            circ_.depolarize1(noise_.pIdleData, allData);

        // Measure all ancillas in patch-major, plaquette order.
        std::uint64_t base = circ_.numMeasurements();
        circ_.append(sim::Gate::MR, allAnc);

        std::vector<std::vector<std::uint64_t>> cur(
            numPatches_,
            std::vector<std::uint64_t>(plaqs.size(), 0));
        for (int p = 0; p < numPatches_; ++p)
            for (std::size_t i = 0; i < plaqs.size(); ++i)
                cur[p][i] = base + static_cast<std::uint64_t>(p) *
                                       plaqs.size() +
                            i;

        // Detector emission.
        std::uint64_t now = circ_.numMeasurements();
        for (int p = 0; p < numPatches_; ++p) {
            for (std::size_t i = 0; i < plaqs.size(); ++i) {
                const bool isX = plaqs[i].isX;
                std::vector<std::uint32_t> lookbacks;
                lookbacks.push_back(
                    static_cast<std::uint32_t>(now - cur[p][i]));
                if (!haveLast_) {
                    // First round: only the basis matching the data
                    // initialization is deterministic.
                    bool deterministic =
                        (initBasis_ == 'Z') ? !isX : isX;
                    if (!deterministic)
                        continue;
                } else {
                    std::uint32_t frame =
                        isX ? frameX_[p] : frameZ_[p];
                    for (int q = 0; q < numPatches_; ++q) {
                        if (frame & (1u << q)) {
                            lookbacks.push_back(
                                static_cast<std::uint32_t>(
                                    now - lastMeas_[q][i]));
                        }
                    }
                }
                circ_.detector(lookbacks);
                meta_.detectorIsX.push_back(isX ? 1 : 0);
                meta_.detectorPatch.push_back(p);
                meta_.detectorRound.push_back(round_);
            }
        }

        // Round complete: reset syndrome frames, roll measurements.
        for (int p = 0; p < numPatches_; ++p) {
            frameZ_[p] = 1u << p;
            frameX_[p] = 1u << p;
            lastMeas_[p] = cur[p];
        }
        haveLast_ = true;
        ++round_;
    }

    /** Transversal CX between patches a (control) and b (target). */
    void
    transversalCx(int a, int b)
    {
        std::vector<std::uint32_t> pairs;
        for (std::uint32_t i = 0; i < code_.numData(); ++i) {
            pairs.push_back(dataQubit(a, i));
            pairs.push_back(dataQubit(b, i));
        }
        circ_.append(sim::Gate::CX, pairs);
        if (noise_.p2 > 0)
            circ_.depolarize2(noise_.p2, pairs);
        // Stabilizer pullback: Z_b -> Z_a Z_b, X_a -> X_a X_b.
        frameZ_[b] ^= frameZ_[a];
        frameX_[a] ^= frameX_[b];
    }

    /**
     * Final transversal data measurement in the init basis, with
     * closing detectors and one logical observable per patch.
     */
    void
    finishWithDataMeasurement()
    {
        std::vector<std::uint32_t> allData;
        for (int p = 0; p < numPatches_; ++p)
            for (std::uint32_t i = 0; i < code_.numData(); ++i)
                allData.push_back(dataQubit(p, i));
        const bool zBasis = initBasis_ == 'Z';
        if (noise_.pMeas > 0) {
            if (zBasis)
                circ_.xError(noise_.pMeas, allData);
            else
                circ_.zError(noise_.pMeas, allData);
        }
        std::uint64_t base = circ_.numMeasurements();
        circ_.append(zBasis ? sim::Gate::M : sim::Gate::MX, allData);
        std::uint64_t now = circ_.numMeasurements();

        auto dataMeasIndex = [&](int p, std::uint32_t local) {
            return base + static_cast<std::uint64_t>(p) *
                              code_.numData() +
                   local;
        };

        const auto &plaqs = code_.plaquettes();
        for (int p = 0; p < numPatches_; ++p) {
            for (std::size_t i = 0; i < plaqs.size(); ++i) {
                if (plaqs[i].isX == zBasis)
                    continue;  // only same-basis plaquettes close
                std::vector<std::uint32_t> lookbacks;
                lookbacks.push_back(static_cast<std::uint32_t>(
                    now - lastMeas_[p][i]));
                for (std::uint32_t dq : plaqs[i].support)
                    lookbacks.push_back(static_cast<std::uint32_t>(
                        now - dataMeasIndex(p, dq)));
                circ_.detector(lookbacks);
                meta_.detectorIsX.push_back(plaqs[i].isX ? 1 : 0);
                meta_.detectorPatch.push_back(p);
                meta_.detectorRound.push_back(round_);
            }
            // Logical observable of this patch.
            const auto &logical =
                zBasis ? code_.logicalZ() : code_.logicalX();
            std::vector<std::uint32_t> lookbacks;
            for (std::uint32_t dq : logical)
                lookbacks.push_back(static_cast<std::uint32_t>(
                    now - dataMeasIndex(p, dq)));
            circ_.observable(static_cast<std::uint32_t>(p),
                             lookbacks);
            meta_.observableIsX.push_back(zBasis ? 0 : 1);
            meta_.observablePatch.push_back(p);
        }
        meta_.numRounds = round_ + 1;
    }

  private:
    const SurfaceCode &code_;
    int numPatches_;
    NoiseParams noise_;
    Circuit circ_;
    CircuitMeta meta_;
    char initBasis_ = 'Z';
    int round_ = 0;  //!< SE rounds completed (next detector round)
    std::vector<std::vector<std::uint64_t>> lastMeas_;
    bool haveLast_;
    std::vector<std::uint32_t> frameZ_;
    std::vector<std::uint32_t> frameX_;
};

} // namespace

Experiment
buildMemory(const SurfaceCode &code, char basis, int rounds,
            const NoiseParams &noise)
{
    TRAQ_REQUIRE(basis == 'Z' || basis == 'X',
                 "memory basis must be 'Z' or 'X'");
    TRAQ_REQUIRE(rounds >= 1, "memory needs at least one SE round");
    MultiPatchBuilder b(code, 1, noise);
    b.initData(basis);
    for (int r = 0; r < rounds; ++r)
        b.seRound();
    b.finishWithDataMeasurement();
    Experiment e;
    e.circuit = std::move(b.circuit());
    e.meta = std::move(b.meta());
    return e;
}

Experiment
buildTransversalCnot(const TransversalCnotSpec &spec)
{
    TRAQ_REQUIRE(spec.cnotLayers >= 1, "need at least one CNOT layer");
    TRAQ_REQUIRE(spec.cnotsPerBatch >= 1 && spec.seRoundsPerBatch >= 1,
                 "batch sizes must be positive");
    SurfaceCode code(spec.distance);
    MultiPatchBuilder b(code, 2, spec.noise);
    b.initData('Z');
    for (int r = 0; r < std::max(1, spec.warmupRounds); ++r)
        b.seRound();

    int layersDone = 0;
    while (layersDone < spec.cnotLayers) {
        int batch = std::min(spec.cnotsPerBatch,
                             spec.cnotLayers - layersDone);
        for (int g = 0; g < batch; ++g) {
            bool flip = spec.alternateDirection &&
                        ((layersDone + g) % 2 == 1);
            if (flip)
                b.transversalCx(1, 0);
            else
                b.transversalCx(0, 1);
        }
        layersDone += batch;
        for (int s = 0; s < spec.seRoundsPerBatch; ++s)
            b.seRound();
    }
    b.finishWithDataMeasurement();
    Experiment e;
    e.circuit = std::move(b.circuit());
    e.meta = std::move(b.meta());
    return e;
}

} // namespace traq::codes
