#include "src/noise/noise.hh"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>

#include "src/common/assert.hh"
#include "src/common/serialize.hh"
#include "src/platform/movement.hh"

namespace traq::noise {
namespace {

/**
 * Parameter-map reader that validates names and ranges up front.
 * Every source constructor drains one of these and then calls
 * finish(), so a misspelled parameter throws instead of no-opping.
 */
class ParamReader
{
  public:
    ParamReader(const std::string &source,
                const std::map<std::string, double> &params)
        : source_(source), params_(params)
    {}

    double
    get(const std::string &name, double fallback)
    {
        seen_.push_back(name);
        auto it = params_.find(name);
        return it == params_.end() ? fallback : it->second;
    }

    void
    finish() const
    {
        for (const auto &[name, value] : params_) {
            (void)value;
            if (std::find(seen_.begin(), seen_.end(), name) ==
                seen_.end()) {
                std::ostringstream oss;
                oss << "unknown parameter '" << name
                    << "' for noise source '" << source_
                    << "' (known:";
                for (const auto &k : seen_)
                    oss << " " << k;
                oss << ")";
                TRAQ_FATAL(oss.str());
            }
        }
    }

  private:
    std::string source_;
    const std::map<std::string, double> &params_;
    std::vector<std::string> seen_;
};

void
requireProb(double p, const char *what)
{
    TRAQ_REQUIRE(p >= 0.0 && p <= 1.0,
                 std::string(what) + " must be in [0, 1]");
}

bool
isTwoQubitGate(sim::Gate g)
{
    return g == sim::Gate::CX || g == sim::Gate::CZ ||
           g == sim::Gate::SWAP;
}

/**
 * Emit one loss-style channel on `qs`: the heralded fraction eta as
 * HERALDED_ERASE(p * eta), the undetected remainder as its exact
 * Pauli-twirl DEPOLARIZE1(3 p (1 - eta) / 4) (an unflagged erasure
 * is I/X/Y/Z at p/4 each; the I component is a no-op, leaving the
 * three Pauli components at p/4 = DEPOLARIZE1 components at
 * (3p/4) / 3).
 */
void
emitLoss(double p, double eta, const std::vector<std::uint32_t> &qs,
         sim::Circuit &out)
{
    if (p <= 0.0 || qs.empty())
        return;
    if (eta > 0.0)
        out.heraldedErase(p * eta, qs);
    const double residue = 3.0 * p * (1.0 - eta) / 4.0;
    if (residue > 0.0)
        out.depolarize1(residue, qs);
}

/** Atom loss after every two-qubit gate, herald-flagged. */
class AtomLossSource final : public NoiseSource
{
  public:
    explicit AtomLossSource(
        const std::map<std::string, double> &params)
    {
        ParamReader r("atom-loss", params);
        p_ = r.get("p", 1e-3);
        eta_ = r.get("heraldEff", 1.0);
        r.finish();
        requireProb(p_, "atom-loss p");
        requireProb(eta_, "atom-loss heraldEff");
    }

    const char *name() const override { return "atom-loss"; }

    void
    after(const sim::Instruction &inst, const CompileInfo &info,
          sim::Circuit &out) override
    {
        (void)info;
        if (isTwoQubitGate(inst.gate))
            emitLoss(p_, eta_, inst.targets, out);
    }

  private:
    double p_ = 0.0;
    double eta_ = 1.0;
};

/** Leakage out of the qubit subspace after every unitary. */
class LeakageSource final : public NoiseSource
{
  public:
    explicit LeakageSource(
        const std::map<std::string, double> &params)
    {
        ParamReader r("leakage", params);
        p_ = r.get("p", 1e-4);
        eta_ = r.get("heraldEff", 0.5);
        r.finish();
        requireProb(p_, "leakage p");
        requireProb(eta_, "leakage heraldEff");
    }

    const char *name() const override { return "leakage"; }

    void
    after(const sim::Instruction &inst, const CompileInfo &info,
          sim::Circuit &out) override
    {
        (void)info;
        const sim::GateInfo &gi = sim::gateInfo(inst.gate);
        if (gi.unitary && inst.gate != sim::Gate::I)
            emitLoss(p_, eta_, inst.targets, out);
    }

  private:
    double p_ = 0.0;
    double eta_ = 0.5;
};

/**
 * Dephasing of spectator qubits while a measurement is pipelined
 * with a block move (Sec. IV.2): every qubit NOT being measured
 * waits out max(measure, move) and dephases with
 * p = (1 - exp(-t / T2)) / 2.
 */
class IdleDephasingSource final : public NoiseSource
{
  public:
    explicit IdleDephasingSource(
        const std::map<std::string, double> &params)
    {
        ParamReader r("idle-dephasing", params);
        t2_ = r.get("t2", 1.0);
        moveSites_ = r.get("moveSites", 2.0);
        r.finish();
        TRAQ_REQUIRE(t2_ > 0.0, "idle-dephasing t2 must be > 0");
        TRAQ_REQUIRE(moveSites_ >= 0.0,
                     "idle-dephasing moveSites must be >= 0");
    }

    const char *name() const override { return "idle-dephasing"; }

    void
    before(const sim::Instruction &inst, const CompileInfo &info,
           sim::Circuit &out) override
    {
        if (!sim::gateInfo(inst.gate).measurement)
            return;
        platform::MoveSchedule sched(info.platform);
        sched.addPipelinedMeasureMove(moveSites_);
        const double t = sched.totalTime();
        const double p = 0.5 * (1.0 - std::exp(-t / t2_));
        if (p <= 0.0)
            return;
        idle_.clear();
        for (std::uint32_t q = 0; q < info.numQubits; ++q)
            if (std::find(inst.targets.begin(), inst.targets.end(),
                          q) == inst.targets.end())
                idle_.push_back(q);
        if (!idle_.empty())
            out.zError(p, idle_);
    }

  private:
    double t2_ = 1.0;
    double moveSites_ = 2.0;
    std::vector<std::uint32_t> idle_;
};

/** Perfectly correlated two-qubit Pauli noise after entanglers. */
class CorrelatedPauliSource final : public NoiseSource
{
  public:
    explicit CorrelatedPauliSource(
        const std::map<std::string, double> &params)
    {
        ParamReader r("correlated-pauli", params);
        p_ = r.get("p", 1e-4);
        r.finish();
        requireProb(p_, "correlated-pauli p");
    }

    const char *name() const override { return "correlated-pauli"; }

    void
    after(const sim::Instruction &inst, const CompileInfo &info,
          sim::Circuit &out) override
    {
        (void)info;
        if (isTwoQubitGate(inst.gate) && p_ > 0.0)
            out.correlatedPauli2(p_, inst.targets);
    }

  private:
    double p_ = 0.0;
};

/**
 * Readout bias: the physical flip before a measurement is stronger
 * for one outcome (bright/dark asymmetry), modeled as
 * p (1 + bias) in the measured basis's flip direction.
 */
class BiasedMeasurementSource final : public NoiseSource
{
  public:
    explicit BiasedMeasurementSource(
        const std::map<std::string, double> &params)
    {
        ParamReader r("biased-measurement", params);
        p_ = r.get("p", 1e-3);
        bias_ = r.get("bias", 0.0);
        r.finish();
        requireProb(p_, "biased-measurement p");
        TRAQ_REQUIRE(bias_ >= -1.0 && bias_ <= 1.0,
                     "biased-measurement bias must be in [-1, 1]");
    }

    const char *name() const override
    {
        return "biased-measurement";
    }

    void
    before(const sim::Instruction &inst, const CompileInfo &info,
           sim::Circuit &out) override
    {
        (void)info;
        const double pUp =
            std::clamp(p_ * (1.0 + bias_), 0.0, 1.0);
        const double pDown =
            std::clamp(p_ * (1.0 - bias_), 0.0, 1.0);
        if (inst.gate == sim::Gate::M ||
            inst.gate == sim::Gate::MR) {
            if (pUp > 0.0)
                out.xError(pUp, inst.targets);
        } else if (inst.gate == sim::Gate::MX) {
            if (pDown > 0.0)
                out.zError(pDown, inst.targets);
        }
    }

  private:
    double p_ = 0.0;
    double bias_ = 0.0;
};

/** The registry; guarded for concurrent registration/lookup. */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, NoiseSourceFactory> factories;
};

Registry &
registry()
{
    static Registry *r = [] {
        auto *reg = new Registry;
        reg->factories["atom-loss"] = [](const auto &p) {
            return std::make_unique<AtomLossSource>(p);
        };
        reg->factories["leakage"] = [](const auto &p) {
            return std::make_unique<LeakageSource>(p);
        };
        reg->factories["idle-dephasing"] = [](const auto &p) {
            return std::make_unique<IdleDephasingSource>(p);
        };
        reg->factories["correlated-pauli"] = [](const auto &p) {
            return std::make_unique<CorrelatedPauliSource>(p);
        };
        reg->factories["biased-measurement"] = [](const auto &p) {
            return std::make_unique<BiasedMeasurementSource>(p);
        };
        return reg;
    }();
    return *r;
}

} // namespace

std::string
NoiseSpec::canonical() const
{
    std::ostringstream oss;
    bool firstSource = true;
    for (const auto &src : sources) {
        if (!firstSource)
            oss << "|";
        firstSource = false;
        oss << src.name << "(";
        bool firstParam = true;
        for (const auto &[k, v] : src.params) {
            if (!firstParam)
                oss << ",";
            firstParam = false;
            oss << k << "=" << fmtRoundTrip(v);
        }
        oss << ")";
    }
    return oss.str();
}

void
NoiseSpec::setFlat(std::string_view key, double value)
{
    constexpr std::string_view prefix = "noise.";
    TRAQ_REQUIRE(key.substr(0, prefix.size()) == prefix,
                 "flat noise key must start with 'noise.'");
    const std::string_view rest = key.substr(prefix.size());
    const std::size_t dot = rest.find('.');
    TRAQ_REQUIRE(dot != std::string_view::npos && dot > 0 &&
                     dot + 1 < rest.size(),
                 "flat noise key must be noise.<source>.<param>");
    const std::string source(rest.substr(0, dot));
    const std::string param(rest.substr(dot + 1));
    for (auto &src : sources) {
        if (src.name == source) {
            src.params[param] = value;
            return;
        }
    }
    sources.push_back({source, {{param, value}}});
}

std::map<std::string, double>
NoiseSpec::flat() const
{
    std::map<std::string, double> out;
    for (const auto &src : sources)
        for (const auto &[k, v] : src.params)
            out["noise." + src.name + "." + k] = v;
    return out;
}

void
registerNoiseSource(const std::string &name,
                    NoiseSourceFactory factory)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.factories[name] = std::move(factory);
}

std::unique_ptr<NoiseSource>
makeNoiseSource(const NoiseSourceSpec &spec)
{
    NoiseSourceFactory factory;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        auto it = r.factories.find(spec.name);
        if (it == r.factories.end()) {
            std::ostringstream oss;
            oss << "unknown noise source '" << spec.name
                << "' (registered:";
            for (const auto &[k, f] : r.factories) {
                (void)f;
                oss << " " << k;
            }
            oss << ")";
            TRAQ_FATAL(oss.str());
        }
        factory = it->second;
    }
    return factory(spec.params);
}

std::vector<std::string>
registeredNoiseSources()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto &[k, f] : r.factories) {
        (void)f;
        names.push_back(k);
    }
    return names;
}

NoiseModel
NoiseModel::fromSpec(const NoiseSpec &spec)
{
    NoiseModel model;
    model.sources_.reserve(spec.sources.size());
    for (const auto &src : spec.sources)
        model.sources_.push_back(makeNoiseSource(src));
    return model;
}

sim::Circuit
NoiseModel::compile(const sim::Circuit &circuit,
                    const platform::AtomArrayParams &params) const
{
    if (sources_.empty())
        return circuit;
    CompileInfo info;
    info.numQubits = circuit.numQubits();
    info.platform = params;
    sim::Circuit out;
    for (const sim::Instruction &inst : circuit.instructions()) {
        for (const auto &src : sources_)
            src->before(inst, info, out);
        out.append(inst);
        for (const auto &src : sources_)
            src->after(inst, info, out);
    }
    return out;
}

} // namespace traq::noise
