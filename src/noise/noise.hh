/**
 * @file
 * Composable atom-array noise subsystem.
 *
 * The experiment builders (src/codes/experiments.hh) bake one
 * circuit-level depolarizing model into their circuits; everything
 * the paper's platform actually suffers beyond that — atom loss with
 * heralded detection, leakage, dephasing while blocks move, motional
 * correlated errors, biased readout — previously had no home.  This
 * subsystem gives each physical effect its own NoiseSource, selected
 * and parameterized by name through a registry (mirroring the
 * Decoder / Estimator registries), and a NoiseModel that compiles an
 * ordered stack of sources over a clean (or already-noisy) circuit
 * by interleaving extra noise instructions around the existing ones.
 *
 * Compilation only ever *adds* noise instructions, never reorders or
 * drops anything, so measurement lookbacks, DETECTOR / OBSERVABLE
 * annotations, and detector ids of the input circuit stay valid; the
 * compiled circuit runs through the same frame sampler and DEM
 * builder as any other.
 *
 * Heralded erasure closes the loop with the decoders: sources with a
 * herald efficiency emit HERALDED_ERASE instructions, whose per-shot
 * herald flags the sampler exposes and whose mechanism provenance
 * the DEM / DecodeGraph track (see sim/gates.hh).  The Monte-Carlo
 * engine turns fired heralds into per-shot DecodeContext weight
 * overrides — erasure-aware decoding.
 *
 * Specs are plain name + scalar-parameter data, round-trippable
 * through the flat "noise.<source>.<param>" keys the estimator
 * request layer uses, so a noise stack travels through the JSON
 * service unchanged.
 */

#ifndef TRAQ_NOISE_NOISE_HH
#define TRAQ_NOISE_NOISE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/platform/params.hh"
#include "src/sim/circuit.hh"

namespace traq::noise {

/** One configured noise source: registry name + named parameters. */
struct NoiseSourceSpec
{
    std::string name;
    std::map<std::string, double> params;
};

/**
 * An ordered stack of noise sources.  Order is application order
 * during compilation (later sources see only the original circuit's
 * instructions, not noise added by earlier sources).
 */
struct NoiseSpec
{
    std::vector<NoiseSourceSpec> sources;

    bool empty() const { return sources.empty(); }

    /**
     * Stable textual encoding — two specs are equivalent exactly
     * when their canonical strings match (parameters sorted,
     * fmtRoundTrip values).  Engine-level caches key on this.
     */
    std::string canonical() const;

    /**
     * Apply one flat parameter "noise.<source>.<param>" = value
     * (the estimator request encoding).  The source is appended on
     * first mention, so a sorted flat map reconstructs a spec with
     * alphabetical source order — deterministic, and order only
     * matters for sources touching the same instruction anyway.
     * Throws FatalError on a malformed key.
     */
    void setFlat(std::string_view key, double value);

    /** Flatten back to "noise.<source>.<param>" keys. */
    std::map<std::string, double> flat() const;
};

/** Static context sources may consult while compiling. */
struct CompileInfo
{
    std::uint32_t numQubits = 0;
    platform::AtomArrayParams platform =
        platform::AtomArrayParams::paperDefaults();
};

/**
 * One physical noise effect.  Sources are stateless between
 * circuits; before()/after() are called once per input instruction
 * and append noise instructions to the output circuit.
 */
class NoiseSource
{
  public:
    virtual ~NoiseSource() = default;

    /** Registry name, e.g. "atom-loss". */
    virtual const char *name() const = 0;

    /** Emit noise preceding `inst` (e.g. pre-measurement flips). */
    virtual void before(const sim::Instruction &inst,
                        const CompileInfo &info, sim::Circuit &out)
    {
        (void)inst;
        (void)info;
        (void)out;
    }

    /** Emit noise following `inst` (e.g. post-gate loss). */
    virtual void after(const sim::Instruction &inst,
                       const CompileInfo &info, sim::Circuit &out)
    {
        (void)inst;
        (void)info;
        (void)out;
    }
};

/** Factory signature used by the noise-source registry. */
using NoiseSourceFactory =
    std::function<std::unique_ptr<NoiseSource>(
        const std::map<std::string, double> &)>;

/**
 * Register (or replace) the factory for a source name.  Built-ins
 * ("atom-loss", "leakage", "idle-dephasing", "correlated-pauli",
 * "biased-measurement") are pre-registered; external code may add
 * its own without touching the harness.
 */
void registerNoiseSource(const std::string &name,
                         NoiseSourceFactory factory);

/**
 * Instantiate one source from its spec.  Throws FatalError on an
 * unknown source name (listing the registered ones) or an unknown
 * parameter name — a sweep over a misspelled axis must not silently
 * no-op (same loudness contract as the estimator registry).
 */
std::unique_ptr<NoiseSource>
makeNoiseSource(const NoiseSourceSpec &spec);

/** Sorted list of registered source names. */
std::vector<std::string> registeredNoiseSources();

/**
 * A compiled stack of noise sources.  Move-only (owns the source
 * instances); build one from a spec and reuse it across circuits.
 */
class NoiseModel
{
  public:
    NoiseModel() = default;

    /** Instantiate every source of the spec (validates it fully). */
    static NoiseModel fromSpec(const NoiseSpec &spec);

    bool empty() const { return sources_.empty(); }

    /**
     * Compile: for each instruction of `circuit`, every source's
     * before() noise, then the instruction, then every source's
     * after() noise.  Annotations and measurement lookbacks survive
     * unchanged (only noise instructions are inserted).
     */
    sim::Circuit compile(const sim::Circuit &circuit,
                         const platform::AtomArrayParams &params =
                             platform::AtomArrayParams::
                                 paperDefaults()) const;

  private:
    std::vector<std::unique_ptr<NoiseSource>> sources_;
};

} // namespace traq::noise

#endif // TRAQ_NOISE_NOISE_HH
