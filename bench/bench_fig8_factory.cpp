/**
 * @file
 * Fig. 8(d) reproduction: the 8T-to-CCZ factory design — footprint,
 * stage timing, error budget and cultivation sizing — at the
 * factoring operating point (|CCZ> error 1.6e-11, per-|T> 7.7e-7)
 * and across distances.
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/gadgets/factory.hh"

int
main()
{
    using namespace traq;

    std::printf("=== Fig. 8(d): factory at the factoring operating "
                "point ===\n\n");
    gadgets::FactorySpec spec;   // paper budget 1.6e-11
    auto r = gadgets::designFactory(spec);
    Table t({"quantity", "value", "paper"});
    t.addRow({"distance", std::to_string(r.distance), "27"});
    t.addRow({"per-|T> input error", fmtE(r.tInputError, 2),
              "7.7e-7"});
    t.addRow({"|CCZ> error", fmtE(r.cczError, 2), "1.6e-11"});
    t.addRow({"Clifford share", fmtE(r.cliffordError, 2), "-"});
    t.addRow({"footprint",
              std::to_string(r.footprintWidthSites) + " x " +
                  std::to_string(r.footprintHeightSites) + " sites",
              "12d x 4d"});
    t.addRow({"cultivation rows", std::to_string(r.cultivationRows),
              "1 (our supply model needs more)"});
    t.addRow({"cultivation volume / |T>",
              fmtE(r.cultivationVolume, 2) + " qubit-rounds",
              "1.5e4"});
    t.addRow({"CCZ initiation interval", fmtDuration(r.cczTime),
              "-"});
    t.addRow({"throughput", fmtF(r.throughput, 0) + " /s", "-"});
    t.addRow({"retry overhead", fmtF(r.retryOverhead, 4), "~1"});
    t.print();

    std::printf("\n=== Factory vs target |CCZ> error ===\n\n");
    Table s({"target CCZ error", "d", "|T> error", "footprint",
             "throughput"});
    for (double target : {1e-9, 1e-10, 1.6e-11, 1e-12}) {
        gadgets::FactorySpec sp;
        sp.targetCczError = target;
        auto rr = gadgets::designFactory(sp);
        s.addRow({fmtE(target, 2), std::to_string(rr.distance),
                  fmtE(rr.tInputError, 2),
                  std::to_string(rr.footprintWidthSites) + "x" +
                      std::to_string(rr.footprintHeightSites),
                  fmtF(rr.throughput, 0) + "/s"});
    }
    s.print();
    return 0;
}
