/**
 * @file
 * Fig. 14 reproduction — SweepRunner scans of the "factoring"
 * estimator plus the retained-frontier optimizer.
 *  (a,b) space-time volume and QEC-round duration vs atom
 *        acceleration rescaling;
 *  (c)   volume vs reaction time (gains flatten at small t_r where
 *        the CNOT fan-out floor dominates);
 *  (d)   qubits vs run time trade-off (volume degrades below ~15 M
 *        qubits): ONE uncapped optimizer sweep retains every
 *        feasible point, and each qubit cap is answered from that
 *        Pareto set via bestUnder().
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/optimizer.hh"
#include "src/estimator/sweep.hh"

int
main()
{
    using namespace traq;

    auto factoring = est::makeEstimator("factoring");
    est::EstimateResult ref =
        factoring->estimate({"factoring", {}});
    const double refVolume = ref.metric("spacetimeVolume");

    std::printf("=== Fig. 14(a,b): acceleration sweep ===\n\n");
    est::SweepRunner accelSweep(
        est::EstimateRequest{"factoring", {}});
    accelSweep.addAxis("atom.acceleration",
                       {5500.0 * 0.1, 5500.0 * 0.3, 5500.0 * 1.0,
                        5500.0 * 3.0, 5500.0 * 10.0});
    est::SweepResult as = accelSweep.run();
    Table a({"accel scale", "QEC round", "run time", "qubits",
             "volume ratio"});
    for (const est::EstimateResult &r : as.results) {
        a.addRow({fmtF(r.params.at("atom.acceleration") / 5500.0, 1),
                  fmtDuration(r.metric("qecRound")),
                  fmtDuration(r.metric("totalSeconds")),
                  fmtSi(r.metric("physicalQubits"), 1),
                  fmtF(r.metric("spacetimeVolume") / refVolume, 2)});
    }
    a.print();

    std::printf("\n=== Fig. 14(c): reaction-time sweep ===\n\n");
    // atom.reactionTime splits evenly between measurement and
    // decoding, as in the paper.
    est::SweepRunner reactionSweep(
        est::EstimateRequest{"factoring", {}});
    reactionSweep.addAxis("atom.reactionTime",
                          {0.1e-3, 0.2e-3, 0.5e-3, 1e-3, 2e-3, 5e-3,
                           10e-3});
    est::SweepResult rs = reactionSweep.run();
    Table c({"reaction time", "t_lookup", "t_add", "run time",
             "volume ratio"});
    for (const est::EstimateResult &r : rs.results) {
        c.addRow({fmtDuration(r.params.at("atom.reactionTime")),
                  fmtDuration(r.metric("timePerLookup")),
                  fmtDuration(r.metric("timePerAddition")),
                  fmtDuration(r.metric("totalSeconds")),
                  fmtF(r.metric("spacetimeVolume") / refVolume, 2)});
    }
    c.print();
    std::printf("\n(paper: gains from faster reaction eventually "
                "bottlenecked by the CNOT fan-out volume)\n");

    std::printf("\n=== Fig. 14(d): qubits vs run time trade-off "
                "===\n\n");
    est::FactoringSpec base;
    auto frontier = est::optimizeFactoring(base);
    Table d({"qubit cap", "achieved qubits", "run time",
             "rsep chosen", "volume ratio"});
    for (double cap : {8e6, 10e6, 12e6, 15e6, 20e6, 30e6}) {
        const est::OptimizerPoint *p = frontier.bestUnder(cap);
        if (!p) {
            d.addRow({fmtSi(cap, 0), "infeasible", "-", "-", "-"});
            continue;
        }
        d.addRow({fmtSi(cap, 0), fmtSi(p->physicalQubits, 1),
                  fmtDuration(p->totalSeconds),
                  std::to_string(p->spec.rsep),
                  fmtF(p->spacetimeVolume / refVolume, 2)});
    }
    d.print();
    std::printf("\n(paper: comparable volume until the qubit count "
                "drops below ~15M)\n");
    return 0;
}
