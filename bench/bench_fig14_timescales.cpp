/**
 * @file
 * Fig. 14 reproduction.
 *  (a,b) space-time volume and QEC-round duration vs atom
 *        acceleration rescaling;
 *  (c)   volume vs reaction time (gains flatten at small t_r where
 *        the CNOT fan-out floor dominates);
 *  (d)   qubits vs run time trade-off (volume degrades below ~15 M
 *        qubits).
 */

#include <cstdio>

#include "src/arch/qec_cycle.hh"
#include "src/common/table.hh"
#include "src/estimator/optimizer.hh"
#include "src/estimator/shor.hh"

int
main()
{
    using namespace traq;

    est::FactoringSpec base;
    est::FactoringReport ref = est::estimateFactoring(base);

    std::printf("=== Fig. 14(a,b): acceleration sweep ===\n\n");
    Table a({"accel scale", "QEC round", "run time", "qubits",
             "volume ratio"});
    for (double scale : {0.1, 0.3, 1.0, 3.0, 10.0}) {
        est::FactoringSpec s = base;
        s.atom.acceleration = 5500.0 * scale;
        auto r = est::estimateFactoring(s);
        auto cyc = arch::qecCycle(r.distance, s.atom);
        a.addRow({fmtF(scale, 1), fmtDuration(cyc.total),
                  fmtDuration(r.totalSeconds),
                  fmtSi(r.physicalQubits, 1),
                  fmtF(r.spacetimeVolume / ref.spacetimeVolume, 2)});
    }
    a.print();

    std::printf("\n=== Fig. 14(c): reaction-time sweep ===\n\n");
    Table c({"reaction time", "t_lookup", "t_add", "run time",
             "volume ratio"});
    for (double tr : {0.1e-3, 0.2e-3, 0.5e-3, 1e-3, 2e-3, 5e-3,
                      10e-3}) {
        est::FactoringSpec s = base;
        // Split the reaction time between measurement and decoding.
        s.atom.measureTime = tr / 2.0;
        s.atom.decodeTime = tr / 2.0;
        auto r = est::estimateFactoring(s);
        c.addRow({fmtDuration(tr), fmtDuration(r.timePerLookup),
                  fmtDuration(r.timePerAddition),
                  fmtDuration(r.totalSeconds),
                  fmtF(r.spacetimeVolume / ref.spacetimeVolume, 2)});
    }
    c.print();
    std::printf("\n(paper: gains from faster reaction eventually "
                "bottlenecked by the CNOT fan-out volume)\n");

    std::printf("\n=== Fig. 14(d): qubits vs run time trade-off "
                "===\n\n");
    Table d({"qubit cap", "achieved qubits", "run time",
             "rsep chosen", "volume ratio"});
    for (double cap : {8e6, 10e6, 12e6, 15e6, 20e6, 30e6}) {
        est::OptimizerOptions opts;
        opts.maxQubits = cap;
        auto res = est::optimizeFactoring(base, opts);
        if (!res.found) {
            d.addRow({fmtSi(cap, 0), "infeasible", "-", "-", "-"});
            continue;
        }
        d.addRow({fmtSi(cap, 0),
                  fmtSi(res.bestReport.physicalQubits, 1),
                  fmtDuration(res.bestReport.totalSeconds),
                  std::to_string(res.bestSpec.rsep),
                  fmtF(res.bestReport.spacetimeVolume /
                           ref.spacetimeVolume, 2)});
    }
    d.print();
    std::printf("\n(paper: comparable volume until the qubit count "
                "drops below ~15M)\n");
    return 0;
}
