/**
 * @file
 * Fig. 13 reproduction — parallel SweepRunner sensitivity scans of
 * the "factoring" estimator.
 *  (a) sensitivity to decoder performance: sweeping the decoding
 *      factor alpha (threshold at 1 CNOT/round from 0.86% down to
 *      0.6%) should raise the space-time volume by <~50%.
 *  (b) sensitivity to coherence time: volume rises slowly until
 *      T_coh drops below ~1 s, then accelerates.
 */

#include <cstdio>

#include "src/arch/se_schedule.hh"
#include "src/common/table.hh"
#include "src/estimator/sweep.hh"
#include "src/model/error_model.hh"

int
main()
{
    using namespace traq;

    auto factoring = est::makeEstimator("factoring");
    est::EstimateResult ref =
        factoring->estimate({"factoring", {}});
    const double refVolume = ref.metric("spacetimeVolume");

    std::printf("=== Fig. 13(a): sensitivity to decoding factor "
                "alpha ===\n\n");
    est::SweepRunner alphaSweep(
        est::EstimateRequest{"factoring", {}});
    alphaSweep.addAxis("errorModel.alpha",
                       {1.0 / 6.0, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0,
                        1.0});
    est::SweepResult ar = alphaSweep.run();

    Table t({"alpha", "pth_eff @x=1", "d", "qubits", "run time",
             "volume ratio"});
    for (const est::EstimateResult &r : ar.results) {
        model::ErrorModelParams em =
            model::ErrorModelParams::paperDefaults();
        em.alpha = r.params.at("errorModel.alpha");
        t.addRow({fmtF(em.alpha, 3),
                  fmtF(100 * model::effectiveThreshold(1.0, em), 2) +
                      "%",
                  std::to_string(
                      static_cast<int>(r.metric("distance"))),
                  fmtSi(r.metric("physicalQubits"), 1),
                  fmtDuration(r.metric("totalSeconds")),
                  fmtF(r.metric("spacetimeVolume") / refVolume, 2)});
    }
    t.print();
    std::printf("\n(paper: dropping the CNOT threshold from 0.86%% "
                "to 0.6%% costs only ~50%% more volume)\n");

    std::printf("\n=== Fig. 13(b): sensitivity to coherence time "
                "===\n\n");
    // Zipped axes (not a grid): each coherence time re-optimizes the
    // idle SE cadence, so build the request list explicitly and run
    // it through the same parallel engine.
    auto atom = platform::AtomArrayParams::paperDefaults();
    auto em = model::ErrorModelParams::paperDefaults();
    std::vector<est::EstimateRequest> jobs;
    for (double tcoh : {100.0, 30.0, 10.0, 3.0, 1.0, 0.3, 0.1}) {
        platform::AtomArrayParams a = atom;
        a.coherenceTime = tcoh;
        jobs.push_back(
            {"factoring",
             {{"atom.coherenceTime", tcoh},
              {"idlePeriod",
               arch::optimalIdlePeriod(27, a, em)}}});
    }
    est::SweepResult cr = est::runRequests(*factoring, jobs);

    Table c({"T_coh", "idle SE period", "qubits", "run time",
             "volume ratio"});
    for (const est::EstimateResult &r : cr.results) {
        c.addRow({fmtDuration(r.params.at("atom.coherenceTime")),
                  fmtDuration(r.params.at("idlePeriod")),
                  fmtSi(r.metric("physicalQubits"), 1),
                  fmtDuration(r.metric("totalSeconds")),
                  fmtF(r.metric("spacetimeVolume") / refVolume, 2)});
    }
    c.print();
    std::printf("\n(paper: volume accelerates once coherence drops "
                "below ~1 s)\n");
    return 0;
}
