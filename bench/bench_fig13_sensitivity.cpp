/**
 * @file
 * Fig. 13 reproduction.
 *  (a) sensitivity to decoder performance: sweeping the decoding
 *      factor alpha (threshold at 1 CNOT/round from 0.86% down to
 *      0.6%) should raise the space-time volume by <~50%.
 *  (b) sensitivity to coherence time: volume rises slowly until
 *      T_coh drops below ~1 s, then accelerates.
 */

#include <cstdio>

#include "src/arch/se_schedule.hh"
#include "src/common/table.hh"
#include "src/estimator/shor.hh"
#include "src/model/error_model.hh"

int
main()
{
    using namespace traq;

    est::FactoringSpec base;
    est::FactoringReport ref = est::estimateFactoring(base);

    std::printf("=== Fig. 13(a): sensitivity to decoding factor "
                "alpha ===\n\n");
    Table t({"alpha", "pth_eff @x=1", "d", "qubits", "run time",
             "volume ratio"});
    for (double alpha : {1.0 / 6.0, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0,
                         1.0}) {
        est::FactoringSpec s = base;
        s.errorModel.alpha = alpha;
        auto r = est::estimateFactoring(s);
        t.addRow({fmtF(alpha, 3),
                  fmtF(100 * model::effectiveThreshold(
                                 1.0, s.errorModel), 2) + "%",
                  std::to_string(r.distance),
                  fmtSi(r.physicalQubits, 1),
                  fmtDuration(r.totalSeconds),
                  fmtF(r.spacetimeVolume / ref.spacetimeVolume, 2)});
    }
    t.print();
    std::printf("\n(paper: dropping the CNOT threshold from 0.86%% "
                "to 0.6%% costs only ~50%% more volume)\n");

    std::printf("\n=== Fig. 13(b): sensitivity to coherence time "
                "===\n\n");
    Table c({"T_coh", "idle SE period", "qubits", "run time",
             "volume ratio"});
    for (double tcoh : {100.0, 30.0, 10.0, 3.0, 1.0, 0.3, 0.1}) {
        est::FactoringSpec s = base;
        s.atom.coherenceTime = tcoh;
        // Re-optimize the idle cadence for the new coherence time.
        s.idlePeriod = arch::optimalIdlePeriod(27, s.atom,
                                               s.errorModel);
        auto r = est::estimateFactoring(s);
        c.addRow({fmtDuration(tcoh), fmtDuration(s.idlePeriod),
                  fmtSi(r.physicalQubits, 1),
                  fmtDuration(r.totalSeconds),
                  fmtF(r.spacetimeVolume / ref.spacetimeVolume, 2)});
    }
    c.print();
    std::printf("\n(paper: volume accelerates once coherence drops "
                "below ~1 s)\n");
    return 0;
}
