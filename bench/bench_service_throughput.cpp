/**
 * @file
 * Service front-end throughput bench: requests/second through the
 * JobQueue (src/service/job_queue.hh) with a cold cache (every
 * request unique, all evaluated) versus a warm cache (the same
 * request set resubmitted, all served from the canonicalKey memo),
 * plus the JSON round-trip cost a line-delimited driver like
 * traq_serve pays per request, plus the persistent
 * content-addressed store (caching tier 3): a queue evaluating into
 * a cache file, then a fresh queue restarted against that file
 * serving the same traffic from the persistent tier alone.
 *
 * Machine-readable lines for scripts/perf_smoke.sh:
 *
 *     service-throughput[cold]: <req/s> req/s (...)
 *     service-throughput[warm]: <req/s> req/s (...)
 *     service-throughput[json]: <req/s> req/s (...)
 *     service-throughput[stream]: <req/s> req/s (...)
 *     stream-first-result: <ms> ms (...)
 *     service-throughput[cold-persist]: <req/s> req/s (...)
 *     service-throughput[warm-restart]: <req/s> req/s (...)
 *     warm-restart-speedup: <X.X>x (...)
 *
 * The request mix is the closed-form estimator kinds — the traffic a
 * resource-estimation service actually serves; the Monte-Carlo kinds
 * are benched by bench_sim_montecarlo.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/estimator/estimator.hh"
#include "src/service/job_queue.hh"

namespace {

using namespace traq;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** A mixed-kind request list with all-distinct canonical keys. */
std::vector<est::EstimateRequest>
makeRequests(std::size_t n)
{
    std::vector<est::EstimateRequest> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double knob = 1.0 + static_cast<double>(i);
        switch (i % 3) {
          case 0:
            reqs.push_back(
                {"gidney-ekera",
                 {{"tReaction", 1e-5 * knob}}});
            break;
          case 1:
            reqs.push_back(
                {"idle-storage",
                 {{"distance", 11 + 2 * static_cast<double>(i % 13)},
                  {"sePeriod", 1e-4 * knob}}});
            break;
          default:
            reqs.push_back(
                {"factory-design",
                 {{"targetCczError", 1e-7 * knob}}});
            break;
        }
    }
    return reqs;
}

double
runPhase(service::JobQueue &queue,
         const std::vector<est::EstimateRequest> &reqs,
         const char *label)
{
    const auto start = Clock::now();
    queue.submitBatch(reqs);
    queue.drain();
    const double elapsed = secondsSince(start);
    const double rps = static_cast<double>(reqs.size()) / elapsed;
    const service::JobQueueStats stats = queue.stats();
    std::printf("service-throughput[%s]: %.0f req/s "
                "(%zu requests in %.3f s; totals: %zu evaluated, "
                "%zu cache hits, %u threads)\n",
                label, rps, reqs.size(), elapsed, stats.evaluated,
                stats.cacheHits, queue.threads());
    return rps;
}

} // namespace

int
main()
{
    const std::size_t n = 20000;
    const std::vector<est::EstimateRequest> reqs = makeRequests(n);

    service::JobQueue queue;
    // Cold: every canonical key is new, so all n are evaluated.
    runPhase(queue, reqs, "cold");
    // Warm: the same keys again — zero evaluations, pure cache.
    runPhase(queue, reqs, "warm");

    // JSON round-trip cost per request: what a line-delimited
    // driver pays on top of the queue (emit + parse back).
    {
        const auto start = Clock::now();
        std::size_t bytes = 0;
        for (const est::EstimateRequest &req : reqs) {
            const est::EstimateRequest back =
                est::requestFromJson(est::toJson(req));
            bytes += back.kind.size();
        }
        const double elapsed = secondsSince(start);
        std::printf("service-throughput[json]: %.0f req/s "
                    "(%zu emit+parse round-trips in %.3f s, "
                    "checksum %zu)\n",
                    static_cast<double>(n) / elapsed, n, elapsed,
                    bytes);
    }

    // Streaming completion phase (PR-10 service tier): a feeder
    // thread submits while the main thread drains waitCompleted()
    // in completion order — the traq_serve shape.  Two numbers: the
    // time a streaming client waits for the *first* announcement
    // (the read-all design paid the whole batch here) and the
    // completion-order throughput of the full stream.
    {
        service::JobQueue q;
        const auto start = Clock::now();
        std::thread feeder([&] {
            for (const est::EstimateRequest &req : reqs)
                q.submit(req);
            q.closeSubmissions();
        });
        double firstMs = -1.0;
        std::size_t seen = 0;
        while (q.waitCompleted()) {
            if (seen++ == 0)
                firstMs = secondsSince(start) * 1e3;
        }
        feeder.join();
        const double elapsed = secondsSince(start);
        std::printf("service-throughput[stream]: %.0f req/s "
                    "(%zu completions streamed in %.3f s, "
                    "cold cache)\n",
                    static_cast<double>(seen) / elapsed, seen,
                    elapsed);
        std::printf("stream-first-result: %.3f ms (submit to first "
                    "completion announcement)\n", firstMs);
    }

    // Persistent store (caching tier 3): a queue evaluating into a
    // cache file (cold + append cost), then a *fresh* queue opened
    // on that file — the restarted-worker scenario — serving the
    // identical request set from the persistent tier alone.  The
    // store is parsed once at construction, outside the timed
    // window, exactly as a restarted traq_serve pays it before
    // accepting traffic.
    {
        char path[] = "/tmp/traq_bench_castore_XXXXXX";
        const int fd = mkstemp(path);
        if (fd < 0) {
            std::fprintf(stderr, "mkstemp failed; skipping "
                                 "warm-restart phase\n");
            return 0;
        }
        close(fd);
        double coldPersist = 0.0;
        double warmRestart = 0.0;
        {
            service::JobQueueOptions o;
            o.cacheFile = path;
            service::JobQueue pq(o);
            coldPersist = runPhase(pq, reqs, "cold-persist");
        }  // destructor drains; every outcome is now on disk
        {
            service::JobQueueOptions o;
            o.cacheFile = path;
            service::JobQueue pq(o);
            // Untimed warmup pass (allocator + page state), then
            // eight timed passes over the set: a >100 ms
            // steady-state window so the ratio below is not at the
            // mercy of scheduler noise on a loaded single-core box
            // (perf_smoke runs this right after the long benches).
            pq.submitBatch(reqs);
            pq.drain();
            std::vector<est::EstimateRequest> reqsRep;
            reqsRep.reserve(8 * n);
            for (int rep = 0; rep < 8; ++rep)
                reqsRep.insert(reqsRep.end(), reqs.begin(),
                               reqs.end());
            warmRestart = runPhase(pq, reqsRep, "warm-restart");
            const service::JobQueueStats stats = pq.stats();
            const std::size_t want = n + reqsRep.size();
            if (stats.evaluated != 0 ||
                stats.persistentHits != want)
                std::printf("warm-restart ANOMALY: %zu evaluated, "
                            "%zu persistent hits (want 0 / %zu)\n",
                            stats.evaluated, stats.persistentHits,
                            want);
        }
        std::remove(path);
        std::printf("warm-restart-speedup: %.1fx (persistent store "
                    "vs cold evaluation; target >= 10x)\n",
                    coldPersist > 0 ? warmRestart / coldPersist
                                    : 0.0);
    }
    return 0;
}
