/**
 * @file
 * Fig. 2 reproduction: qubits vs runtime for 2048-bit factoring —
 * this work against the Gidney-Ekera lattice-surgery estimates at a
 * 900 us QEC cycle (reaction-time sweep) and the Beverland-et-al.
 * anchor.  The headline shape: ~50x runtime reduction at equal
 * footprint, i.e. an order-of-magnitude lower space-time volume.
 *
 * Both series run through the unified Estimator API: "factoring"
 * serves this work, "gidney-ekera" the baseline, and the
 * reaction-time scan is a parallel SweepRunner grid.
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/baselines.hh"
#include "src/estimator/sweep.hh"

int
main()
{
    using namespace traq;

    std::printf("=== Fig. 2: qubits vs run time (2048-bit RSA) "
                "===\n\n");
    Table t({"series", "qubits", "run time", "volume [qubit-s]"});

    // This work at the Table II operating point, then trading qubits
    // for time via the runway separation (fewer segments -> fewer
    // factories and runway bits but longer reaction-limited carry
    // chains; cf. Fig. 14(d)).
    auto factoring = est::makeEstimator("factoring");
    std::vector<est::EstimateRequest> ourJobs = {
        {"factoring", {}},
        {"factoring", {{"rsep", 256}}},
        {"factoring", {{"rsep", 1024}}},
    };
    est::SweepResult ours = est::runRequests(*factoring, ourJobs);
    for (std::size_t i = 0; i < ours.results.size(); ++i) {
        const est::EstimateResult &r = ours.results[i];
        std::string label =
            i == 0 ? "this work (transversal)"
                   : "this work (rsep=" +
                         std::to_string(static_cast<int>(
                             r.params.at("rsep"))) +
                         ")";
        t.addRow({label, fmtSi(r.metric("physicalQubits"), 1),
                  fmtDuration(r.metric("totalSeconds")),
                  fmtE(r.metric("spacetimeVolume"), 2)});
    }

    // Gidney-Ekera at 900 us cycle, reaction sweep (blue points).
    est::SweepRunner geSweep(
        est::EstimateRequest{"gidney-ekera",
                             {{"tCycle", 900e-6}}});
    geSweep.addAxis("tReaction", {0.1e-3, 1e-3, 10e-3});
    est::SweepResult ge = geSweep.run();
    for (const est::EstimateResult &r : ge.results) {
        t.addRow({"Gidney-Ekera (lattice surgery) t_r=" +
                      fmtDuration(r.params.at("tReaction")),
                  fmtSi(r.metric("physicalQubits"), 1),
                  fmtDuration(r.metric("totalSeconds")),
                  fmtE(r.metric("spacetimeVolume"), 2)});
    }

    // Original GE operating point (superconducting, 1 us).
    auto gidneyEkera = est::makeEstimator("gidney-ekera");
    est::EstimateResult geAnchor =
        gidneyEkera->estimate({"gidney-ekera", {}});
    t.addRow({"GE anchor (1 us cycle)",
              fmtSi(geAnchor.metric("physicalQubits"), 1),
              fmtDuration(geAnchor.metric("totalSeconds")),
              fmtE(geAnchor.metric("spacetimeVolume"), 2)});

    auto bev = est::beverlandAnchor();
    t.addRow({bev.label, fmtSi(bev.physicalQubits, 1),
              fmtDuration(bev.seconds),
              fmtE(bev.spacetimeVolume, 2)});
    t.print();

    const est::EstimateResult &base = ge.results[1]; // t_r = 1 ms
    const est::EstimateResult &ref = ours.results[0];
    std::printf("\nspeed-up vs lattice surgery @900us: %.1fx "
                "(paper: ~50x)\n",
                base.metric("totalSeconds") /
                    ref.metric("totalSeconds"));
    std::printf("volume ratio: %.1fx lower (paper: >10x)\n",
                base.metric("spacetimeVolume") /
                    ref.metric("spacetimeVolume"));
    return 0;
}
