/**
 * @file
 * Fig. 2 reproduction: qubits vs runtime for 2048-bit factoring —
 * this work against the Gidney-Ekera lattice-surgery estimates at a
 * 900 us QEC cycle (reaction-time sweep) and the Beverland-et-al.
 * anchor.  The headline shape: ~50x runtime reduction at equal
 * footprint, i.e. an order-of-magnitude lower space-time volume.
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/baselines.hh"
#include "src/estimator/shor.hh"

int
main()
{
    using namespace traq;

    std::printf("=== Fig. 2: qubits vs run time (2048-bit RSA) "
                "===\n\n");
    Table t({"series", "qubits", "run time", "volume [qubit-s]"});

    // This work at the Table II operating point.
    est::FactoringSpec spec;
    est::FactoringReport ours = est::estimateFactoring(spec);
    t.addRow({"this work (transversal)",
              fmtSi(ours.physicalQubits, 1),
              fmtDuration(ours.totalSeconds),
              fmtE(ours.spacetimeVolume, 2)});

    // Ours, trading qubits for time via the runway separation
    // (fewer segments -> fewer factories and runway bits but longer
    // reaction-limited carry chains; cf. Fig. 14(d)).
    for (int rsep : {256, 1024}) {
        est::FactoringSpec s = spec;
        s.rsep = rsep;
        est::FactoringReport r = est::estimateFactoring(s);
        t.addRow({"this work (rsep=" + std::to_string(rsep) + ")",
                  fmtSi(r.physicalQubits, 1),
                  fmtDuration(r.totalSeconds),
                  fmtE(r.spacetimeVolume, 2)});
    }

    // Gidney-Ekera at 900 us cycle, reaction sweep (blue points).
    for (double tr : {0.1e-3, 1e-3, 10e-3}) {
        est::GidneyEkeraSpec ge;
        ge.tCycle = 900e-6;
        ge.tReaction = tr;
        auto p = est::gidneyEkera(ge);
        t.addRow({p.label + " t_r=" + fmtDuration(tr),
                  fmtSi(p.physicalQubits, 1),
                  fmtDuration(p.seconds),
                  fmtE(p.spacetimeVolume, 2)});
    }

    // Original GE operating point (superconducting, 1 us).
    est::GidneyEkeraSpec ge1us;
    auto geP = est::gidneyEkera(ge1us);
    t.addRow({"GE anchor (1 us cycle)", fmtSi(geP.physicalQubits, 1),
              fmtDuration(geP.seconds), fmtE(geP.spacetimeVolume, 2)});

    auto bev = est::beverlandAnchor();
    t.addRow({bev.label, fmtSi(bev.physicalQubits, 1),
              fmtDuration(bev.seconds),
              fmtE(bev.spacetimeVolume, 2)});
    t.print();

    est::GidneyEkeraSpec ge900;
    ge900.tCycle = 900e-6;
    ge900.tReaction = 1e-3;
    auto base = est::gidneyEkera(ge900);
    std::printf("\nspeed-up vs lattice surgery @900us: %.1fx "
                "(paper: ~50x)\n",
                base.seconds / ours.totalSeconds);
    std::printf("volume ratio: %.1fx lower (paper: >10x)\n",
                base.spacetimeVolume / ours.spacetimeVolume);
    return 0;
}
