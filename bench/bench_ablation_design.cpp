/**
 * @file
 * Ablations of the architecture's design choices (DESIGN.md §6):
 * what each optimization in Sec. III/IV actually buys.
 *
 *  1. Measurement pipelining (Sec. IV.2): overlapping ancilla
 *     measurement with transversal-gate block moves.
 *  2. GHZ grid spacing and fan-out pipelining (Sec. III.8).
 *  3. Oblivious carry runways (Sec. III.7): rsep = n disables them.
 *  4. Calibration-constant sensitivity (estimator/calibration.hh):
 *     the headline must be robust to +-20% in kappa.
 *  5. Bell-pair parallelization (Sec. III.5): reaction-limited vs
 *     block-serial execution.
 */

#include <cstdio>

#include "src/arch/qec_cycle.hh"
#include "src/common/table.hh"
#include "src/estimator/shor.hh"
#include "src/gadgets/lookup.hh"
#include "src/gadgets/parallel.hh"

int
main()
{
    using namespace traq;
    auto atom = platform::AtomArrayParams::paperDefaults();

    std::printf("=== Ablation 1: measurement pipelining ===\n\n");
    auto cyc = arch::qecCycle(27, atom);
    double unpipelined = cyc.seGatePhase + atom.measureTime +
                         cyc.patchMove;
    Table p({"variant", "QEC cycle", "relative clock"});
    p.addRow({"pipelined (this work)", fmtDuration(cyc.total),
              "1.00"});
    p.addRow({"unpipelined", fmtDuration(unpipelined),
              fmtF(unpipelined / cyc.total, 2)});
    p.print();

    std::printf("\n=== Ablation 2: GHZ spacing / fan-out pipeline "
                "===\n\n");
    Table g({"spacing", "copies", "lookup time", "fan-out logicals",
             "time x qubits"});
    for (int spacing : {1, 2, 4}) {
        for (int copies : {1, 2}) {
            gadgets::LookupSpec ls;
            ls.targetBits = 2994;
            ls.ghzSpacing = spacing;
            ls.pipelineCopies = copies;
            auto r = gadgets::designLookup(ls);
            g.addRow({std::to_string(spacing),
                      std::to_string(copies),
                      fmtDuration(r.timePerLookup),
                      fmtF(r.activeLogicalQubits, 0),
                      fmtE(r.timePerLookup * r.activeLogicalQubits,
                           2)});
        }
    }
    g.print();

    std::printf("\n=== Ablation 3: carry runways on/off ===\n\n");
    Table rw({"rsep", "segments", "t_add", "run time", "qubits"});
    for (int rsep : {96, 512, 2048 /* = n: runways off */}) {
        est::FactoringSpec s;
        s.rsep = rsep;
        auto r = est::estimateFactoring(s);
        rw.addRow({std::to_string(rsep),
                   std::to_string(r.adder.segments),
                   fmtDuration(r.timePerAddition),
                   fmtDuration(r.totalSeconds),
                   fmtSi(r.physicalQubits, 1)});
    }
    rw.print();

    std::printf("\n=== Ablation 4: calibration sensitivity ===\n\n");
    // kappa enters linearly in the gadget clocks; demonstrate the
    // headline's robustness by scaling the reaction time, which the
    // kappas multiply.
    Table k({"kappa scale", "run time", "qubits", "volume ratio"});
    est::FactoringSpec base;
    auto ref = est::estimateFactoring(base);
    for (double scale : {0.8, 1.0, 1.2}) {
        est::FactoringSpec s = base;
        s.atom.measureTime = 500e-6 * scale;
        s.atom.decodeTime = 500e-6 * scale;
        auto r = est::estimateFactoring(s);
        k.addRow({fmtF(scale, 1), fmtDuration(r.totalSeconds),
                  fmtSi(r.physicalQubits, 1),
                  fmtF(r.spacetimeVolume / ref.spacetimeVolume,
                       2)});
    }
    k.print();

    std::printf("\n=== Ablation 5: Bell-pair parallelization "
                "===\n\n");
    Table b({"block duration", "copies", "throughput [blocks/s]",
             "serial throughput"});
    for (double tblock : {2e-3, 10e-3, 50e-3}) {
        auto plan = gadgets::planBellParallel(tblock,
                                              atom.reactionTime());
        b.addRow({fmtDuration(tblock), std::to_string(plan.copies),
                  fmtF(plan.effectiveRate, 0),
                  fmtF(1.0 / tblock, 0)});
    }
    b.print();
    std::printf("\n(the reaction-limited clock sustains ~1000 "
                "dependent steps/s regardless of block length)\n");
    return 0;
}
