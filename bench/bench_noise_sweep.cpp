/**
 * @file
 * Atom-array noise sweep: logical error rate of surface-code memory
 * under the composable noise stack (src/noise), with the headline
 * comparison erasure-aware vs erasure-blind decoding at each
 * atom-loss rate (the motivation for heralded-erasure conversion on
 * neutral atoms — loss detection turns a Pauli channel into mostly
 * known-location erasures, which the matcher exploits by zeroing
 * flagged edge weights).
 *
 * Two sections:
 *
 *  1. aware vs blind over an atom-loss grid at d = 3 and d = 5 —
 *     the gain ("blind/aware") grows with both distance and loss.
 *  2. herald-efficiency sweep at fixed loss: eta = 0 (no heralds,
 *     both columns equal) to eta = 1 (full conversion).
 *
 * Rates are Monte-Carlo with the sharded deterministic engine, so
 * rerunning this bench reproduces its numbers bit-exactly for a
 * fixed backend and machine-independent for scalar64.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "src/codes/experiments.hh"
#include "src/common/table.hh"
#include "src/decoder/monte_carlo.hh"

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    using namespace traq;
    const std::uint64_t shots = 4096;
    const double pPhys = 0.001;

    std::printf("=== Erasure-aware vs erasure-blind decoding "
                "(p_phys = %g, %llu shots) ===\n\n",
                pPhys, static_cast<unsigned long long>(shots));
    Table t({"d", "atom-loss p", "herald rate", "aware p_L",
             "blind p_L", "blind/aware", "time"});
    for (int d : {3, 5}) {
        codes::SurfaceCode sc(d);
        auto e = codes::buildMemory(sc, 'Z', d,
                                    codes::NoiseParams::uniform(
                                        pPhys));
        for (double loss : {0.005, 0.01, 0.02}) {
            decoder::McOptions opts;
            opts.shots = shots;
            opts.seed = 0xbe9c;
            opts.noiseSpec.setFlat("noise.atom-loss.p", loss);
            const auto t0 = std::chrono::steady_clock::now();
            opts.erasureAware = true;
            auto aware = decoder::runMonteCarlo(e, opts);
            opts.erasureAware = false;
            auto blind = decoder::runMonteCarlo(e, opts);
            const double dt = secondsSince(t0);
            const double ratio =
                aware.anyObservable.hits
                    ? blind.anyObservable.mean /
                          aware.anyObservable.mean
                    : 0.0;
            t.addRow({std::to_string(d), fmtF(loss, 3),
                      fmtF(static_cast<double>(
                               aware.heraldedShots) /
                               static_cast<double>(aware.shots),
                           3),
                      fmtE(aware.anyObservable.mean, 2),
                      fmtE(blind.anyObservable.mean, 2),
                      ratio ? fmtF(ratio, 1) : "inf",
                      fmtDuration(dt)});
        }
    }
    t.print();

    std::printf("\n=== Herald-efficiency sweep "
                "(d = 5, atom-loss p = 0.02) ===\n\n");
    Table h({"heraldEff", "herald rate", "aware p_L", "blind p_L"});
    {
        codes::SurfaceCode sc(5);
        auto e = codes::buildMemory(sc, 'Z', 5,
                                    codes::NoiseParams::uniform(
                                        pPhys));
        for (double eta : {0.0, 0.5, 1.0}) {
            decoder::McOptions opts;
            opts.shots = shots;
            opts.seed = 0xbe9c;
            opts.noiseSpec.setFlat("noise.atom-loss.p", 0.02);
            opts.noiseSpec.setFlat("noise.atom-loss.heraldEff",
                                   eta);
            opts.erasureAware = true;
            auto aware = decoder::runMonteCarlo(e, opts);
            opts.erasureAware = false;
            auto blind = decoder::runMonteCarlo(e, opts);
            h.addRow({fmtF(eta, 2),
                      fmtF(static_cast<double>(
                               aware.heraldedShots) /
                               static_cast<double>(aware.shots),
                           3),
                      fmtE(aware.anyObservable.mean, 2),
                      fmtE(blind.anyObservable.mean, 2)});
        }
    }
    h.print();
    return 0;
}
