/**
 * @file
 * Table II reproduction: sweep the algorithm parameters with the
 * optimizer and print the chosen configuration next to the paper's
 * (wexp=3, wmul=4, rsep=96, rpad=43, d=27, 192 factories) and the
 * Gidney-Ekera choices.
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/optimizer.hh"

int
main()
{
    using namespace traq;

    est::FactoringSpec base;
    base.nBits = 2048;
    est::OptimizerOptions opts;
    est::OptimizerResult res = est::optimizeFactoring(base, opts);

    std::printf("=== Table II: algorithm parameters for 2048-bit "
                "factoring ===\n");
    std::printf("(optimizer evaluated %zu configurations)\n\n",
                res.evaluated);
    if (!res.found) {
        std::printf("no feasible configuration found\n");
        return 1;
    }
    const auto &s = res.bestSpec;
    const auto &r = res.bestReport;
    Table t({"parameter", "this work (optimized)", "paper",
             "Ref [8] (GE)"});
    t.addRow({"exponent window w_exp", std::to_string(s.wExp), "3",
              "5"});
    t.addRow({"multiplication window w_mul", std::to_string(s.wMul),
              "4", "5"});
    t.addRow({"runway separation r_sep", std::to_string(s.rsep),
              "96", "1024"});
    t.addRow({"runway padding r_pad", std::to_string(r.rpad), "43",
              "43"});
    t.addRow({"code distance", std::to_string(r.distance), "27",
              "27"});
    t.addRow({"factories", std::to_string(r.factories), "192 (max)",
              "28"});
    t.print();

    std::printf("\n=== Resulting estimate at the optimum ===\n\n");
    Table h({"quantity", "value", "paper"});
    h.addRow({"lookup-additions", fmtE(r.lookupAdditions, 3),
              "1.07e6"});
    h.addRow({"time per lookup", fmtDuration(r.timePerLookup),
              "0.17 s"});
    h.addRow({"time per addition", fmtDuration(r.timePerAddition),
              "0.28 s"});
    h.addRow({"CCZ count", fmtE(r.cczTotal, 2), "~3e9"});
    h.addRow({"physical qubits", fmtSi(r.physicalQubits, 1), "19M"});
    h.addRow({"run time", fmtDuration(r.totalSeconds), "5.6 days"});
    h.print();
    return 0;
}
