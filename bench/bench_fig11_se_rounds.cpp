/**
 * @file
 * Fig. 11 reproduction.
 *  (a,b) factory space-time volume vs SE rounds per transversal gate,
 *        for alpha = 1/6 (pth_eff 0.86%) and alpha = 1/2 (0.67%):
 *        the optimum sits near 1 SE round per gate.
 *  (c,d) idle-storage SE period optimization: the optimal period is
 *        largely independent of code distance and sits where idle
 *        error matches the SE gate-error contribution (~8 ms at a
 *        10 s coherence time).
 */

#include <cstdio>

#include "src/arch/se_schedule.hh"
#include "src/common/table.hh"
#include "src/gadgets/factory.hh"

int
main()
{
    using namespace traq;

    std::printf("=== Fig. 11(a,b): factory volume vs SE rounds per "
                "gate ===\n\n");
    Table t({"SE rounds/gate", "alpha=1/6: d", "volume [site-s]",
             "alpha=1/2: d", "volume [site-s]"});
    for (double rounds : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        std::vector<std::string> row{fmtF(rounds, 2)};
        for (double alpha : {1.0 / 6.0, 0.5}) {
            gadgets::FactorySpec spec;
            spec.seRoundsPerGate = rounds;
            spec.errorModel.alpha = alpha;
            auto r = gadgets::designFactory(spec);
            double volume = r.qubits * r.cczTime;
            row.push_back(std::to_string(r.distance));
            row.push_back(fmtF(volume, 0));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\n(effective thresholds at 1 round/gate: 0.86%% "
                "for alpha=1/6, 0.67%% for alpha=1/2)\n");

    std::printf("\n=== Fig. 11(c): optimal idle SE period vs "
                "distance ===\n\n");
    auto atom = platform::AtomArrayParams::paperDefaults();
    auto em = model::ErrorModelParams::paperDefaults();
    Table c({"d", "optimal period", "closed-form approx"});
    for (int d : {13, 17, 21, 25, 27, 31}) {
        c.addRow({std::to_string(d),
                  fmtDuration(arch::optimalIdlePeriod(d, atom, em)),
                  fmtDuration(
                      arch::optimalIdlePeriodApprox(d, atom, em))});
    }
    c.print();

    std::printf("\n=== Fig. 11(d): idle logical error rate vs SE "
                "period (d=27) ===\n\n");
    Table dtab({"SE period", "p=1e-3 rate [1/s]", "p=5e-4 rate",
                "p=2e-3 rate"});
    for (double tau : {1e-3, 2e-3, 4e-3, 8e-3, 16e-3, 32e-3,
                       64e-3}) {
        std::vector<std::string> row{fmtDuration(tau)};
        for (double p : {1e-3, 5e-4, 2e-3}) {
            model::ErrorModelParams m = em;
            m.pPhys = p;
            row.push_back(fmtE(
                arch::idleLogicalErrorRate(tau, 27, atom, m), 2));
        }
        dtab.addRow(row);
    }
    dtab.print();
    std::printf("\n(paper operating point: SE every 8 ms at 10 s "
                "coherence)\n");
    return 0;
}
