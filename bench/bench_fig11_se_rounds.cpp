/**
 * @file
 * Fig. 11 reproduction, driven by SweepRunner grids over the
 * "factory-design" and "idle-storage" estimators.
 *  (a,b) factory space-time volume vs SE rounds per transversal gate,
 *        for alpha = 1/6 (pth_eff 0.86%) and alpha = 1/2 (0.67%):
 *        the optimum sits near 1 SE round per gate.
 *  (c,d) idle-storage SE period optimization: the optimal period is
 *        largely independent of code distance and sits where idle
 *        error matches the SE gate-error contribution (~8 ms at a
 *        10 s coherence time).
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/sweep.hh"

int
main()
{
    using namespace traq;

    std::printf("=== Fig. 11(a,b): factory volume vs SE rounds per "
                "gate ===\n\n");
    est::SweepRunner factorySweep(
        est::EstimateRequest{"factory-design", {}});
    factorySweep
        .addAxis("seRoundsPerGate", {0.25, 0.5, 1.0, 2.0, 4.0})
        .addAxis("errorModel.alpha", {1.0 / 6.0, 0.5});
    est::SweepResult fr = factorySweep.run();

    Table t({"SE rounds/gate", "alpha=1/6: d", "volume [site-s]",
             "alpha=1/2: d", "volume [site-s]"});
    // Row-major grid: two alpha columns per SE-rounds row.
    for (std::size_t i = 0; i < fr.results.size(); i += 2) {
        std::vector<std::string> row{
            fmtF(fr.results[i].params.at("seRoundsPerGate"), 2)};
        for (std::size_t j = 0; j < 2; ++j) {
            const est::EstimateResult &r = fr.results[i + j];
            row.push_back(std::to_string(
                static_cast<int>(r.metric("distance"))));
            row.push_back(fmtF(r.metric("volume"), 0));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\n(effective thresholds at 1 round/gate: 0.86%% "
                "for alpha=1/6, 0.67%% for alpha=1/2)\n");

    std::printf("\n=== Fig. 11(c): optimal idle SE period vs "
                "distance ===\n\n");
    est::SweepRunner periodSweep(
        est::EstimateRequest{"idle-storage", {}});
    periodSweep.addAxis("distance", {13, 17, 21, 25, 27, 31});
    est::SweepResult pr = periodSweep.run();
    Table c({"d", "optimal period", "closed-form approx"});
    for (const est::EstimateResult &r : pr.results) {
        c.addRow({std::to_string(
                      static_cast<int>(r.params.at("distance"))),
                  fmtDuration(r.metric("optimalPeriod")),
                  fmtDuration(r.metric("approxPeriod"))});
    }
    c.print();

    std::printf("\n=== Fig. 11(d): idle logical error rate vs SE "
                "period (d=27) ===\n\n");
    est::SweepRunner rateSweep(
        est::EstimateRequest{"idle-storage", {{"distance", 27}}});
    rateSweep
        .addAxis("sePeriod", {1e-3, 2e-3, 4e-3, 8e-3, 16e-3, 32e-3,
                              64e-3})
        .addAxis("errorModel.pPhys", {1e-3, 5e-4, 2e-3});
    est::SweepResult rr = rateSweep.run();
    Table dtab({"SE period", "p=1e-3 rate [1/s]", "p=5e-4 rate",
                "p=2e-3 rate"});
    for (std::size_t i = 0; i < rr.results.size(); i += 3) {
        std::vector<std::string> row{
            fmtDuration(rr.results[i].params.at("sePeriod"))};
        for (std::size_t j = 0; j < 3; ++j)
            row.push_back(fmtE(rr.results[i + j].metric("rate"), 2));
        dtab.addRow(row);
    }
    dtab.print();
    std::printf("\n(paper operating point: SE every 8 ms at 10 s "
                "coherence)\n");
    return 0;
}
