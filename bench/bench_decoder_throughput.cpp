/**
 * @file
 * Decoder and sampler micro-benchmarks (google-benchmark), supporting
 * the paper's decoding-complexity discussion (Sec. III.4): correlated
 * decoding enlarges the decoding problem, so per-shot decoder
 * throughput matters for the 500 us decode-time budget of Table I.
 */

#include <benchmark/benchmark.h>

#include <span>

#include "src/codes/experiments.hh"
#include "src/decoder/decoder.hh"
#include "src/decoder/graph.hh"
#include "src/decoder/mwpm.hh"
#include "src/decoder/union_find.hh"
#include "src/sim/dem.hh"
#include "src/sim/frame.hh"

namespace {

using namespace traq;

struct Fixture
{
    codes::Experiment exp;
    sim::DetectorErrorModel dem;
    decoder::DecodingGraph graph;
    std::vector<std::vector<std::uint32_t>> syndromes;

    explicit Fixture(int d, bool cnot)
        : exp(cnot ? makeCnot(d) : makeMemory(d)),
          dem(sim::buildDem(exp.circuit)),
          graph(decoder::DecodingGraph::fromDem(dem, exp.meta))
    {
        sim::FrameSimulator fs(7);
        sim::FrameBatch batch;
        const std::uint64_t live = ~0ULL;
        while (syndromes.size() < 256) {
            fs.sampleInto(exp.circuit, batch);
            const std::size_t base = syndromes.size();
            syndromes.resize(base + batch.shots());
            sim::extractSyndromes(
                batch, {&live, 1},
                std::span<std::vector<std::uint32_t>>(
                    &syndromes[base], batch.shots()));
        }
    }

    static codes::Experiment
    makeMemory(int d)
    {
        codes::SurfaceCode sc(d);
        return codes::buildMemory(
            sc, 'Z', d, codes::NoiseParams::uniform(1e-3));
    }

    static codes::Experiment
    makeCnot(int d)
    {
        codes::TransversalCnotSpec spec;
        spec.distance = d;
        spec.cnotLayers = 4;
        spec.noise = codes::NoiseParams::uniform(1e-3);
        return codes::buildTransversalCnot(spec);
    }
};

void
BM_FrameSampler(benchmark::State &state)
{
    Fixture f(static_cast<int>(state.range(0)), false);
    sim::FrameSimulator fs(3);
    for (auto _ : state) {
        auto batch = fs.sample(f.exp.circuit);
        benchmark::DoNotOptimize(batch.detectors.data());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_FrameSampler)->Arg(3)->Arg(5)->Arg(7);

void
BM_DemExtraction(benchmark::State &state)
{
    auto exp = Fixture::makeMemory(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto dem = sim::buildDem(exp.circuit);
        benchmark::DoNotOptimize(dem.errors.size());
    }
}
BENCHMARK(BM_DemExtraction)->Arg(3)->Arg(5);

void
BM_UnionFindDecode(benchmark::State &state)
{
    Fixture f(static_cast<int>(state.range(0)), false);
    decoder::UnionFindDecoder uf(f.graph);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            uf.decode(f.syndromes[i % f.syndromes.size()]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnionFindDecode)->Arg(3)->Arg(5)->Arg(7);

void
BM_MwpmDecode(benchmark::State &state)
{
    // Exact matching with UF fallback, through the polymorphic
    // Decoder interface (same path the Monte-Carlo engine uses).
    Fixture f(static_cast<int>(state.range(0)), false);
    auto dec =
        decoder::makeDecoder(decoder::DecoderKind::Fallback, f.graph);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dec->decode(f.syndromes[i % f.syndromes.size()]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MwpmDecode)->Arg(3)->Arg(5);

void
BM_CorrelatedCnotDecode(benchmark::State &state)
{
    // Joint two-patch decoding: the enlarged problem of Sec. III.4.
    Fixture f(static_cast<int>(state.range(0)), true);
    decoder::UnionFindDecoder uf(f.graph);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            uf.decode(f.syndromes[i % f.syndromes.size()]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CorrelatedCnotDecode)->Arg(3)->Arg(5);

} // namespace

BENCHMARK_MAIN();
