/**
 * @file
 * Decoder throughput/latency bench, supporting the paper's
 * decoding-complexity discussion (Sec. III.4): correlated decoding
 * enlarges the decoding problem, and the real-time budget of Table I
 * allows roughly 500 us of decode per QEC round, so per-round decode
 * latency is the figure of merit — especially for the windowed
 * streaming decoder, whose whole point is bounded per-round work.
 *
 * Every registered DecoderKind is timed on the same pre-sampled
 * syndromes (memory and two-patch transversal-CNOT circuits at
 * p = 1e-3), and each kind gets a machine-readable
 *
 *     decode-latency[<kind>]: <us> us/round <PASS|WARN> (budget 500)
 *
 * line on the hardest fixture (d=5 joint CNOT decoding), which
 * scripts/perf_smoke.sh archives into the CI perf-history artifact.
 * Each kind is timed four ways on the same accepted shots: the
 * per-shot decode() loop, one decodeBatch() call over the packed
 * CSR syndromes (MWPM reach cache on — the default — and off, so
 * the "no cache" column isolates the Dijkstra-sharing win), and
 * decodeBatch() with the predecode pair-peeler enabled (the
 * "<kind>+batch+predecode" budget lines).
 * WARN rather than FAIL: CI machine classes vary, and the tripwire
 * for gross regressions is the wall-clock baseline in
 * bench/perf_baseline.txt.
 */

#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/common/table.hh"
#include "src/common/word.hh"
#include "src/decoder/decoder.hh"
#include "src/sim/dem.hh"
#include "src/sim/frame.hh"

namespace {

using namespace traq;

constexpr double kBudgetUsPerRound = 500.0;  // Table I decode slot

struct Fixture
{
    std::string label;
    codes::Experiment exp;
    decoder::DecodeGraph graph;
    int rounds = 1;
    std::vector<std::vector<std::uint32_t>> syndromes;

    Fixture(std::string name, codes::Experiment e,
            std::size_t shots)
        : label(std::move(name)), exp(std::move(e)),
          graph(decoder::DecodeGraph::build(exp))
    {
        rounds = graph.numRounds();
        sim::FrameSimulator fs(7);
        sim::FrameBatch batch;
        const std::uint64_t live = ~0ULL;
        while (syndromes.size() < shots) {
            fs.sampleInto(exp.circuit, batch);
            const std::size_t base = syndromes.size();
            syndromes.resize(base + batch.shots());
            sim::extractSyndromes(
                batch, {&live, 1},
                std::span<std::vector<std::uint32_t>>(
                    &syndromes[base], batch.shots()));
        }
        syndromes.resize(shots);
    }

    static codes::Experiment
    makeMemory(int d)
    {
        codes::SurfaceCode sc(d);
        return codes::buildMemory(
            sc, 'Z', d, codes::NoiseParams::uniform(1e-3));
    }

    static codes::Experiment
    makeCnot(int d)
    {
        codes::TransversalCnotSpec spec;
        spec.distance = d;
        spec.cnotLayers = 4;
        spec.noise = codes::NoiseParams::uniform(1e-3);
        return codes::buildTransversalCnot(spec);
    }
};

/** CSR view over a subset of a fixture's pre-sampled syndromes. */
struct BatchStorage
{
    std::vector<std::uint32_t> offsets{0};
    std::vector<std::uint32_t> defects;
    std::size_t shots = 0;

    void
    add(const std::vector<std::uint32_t> &syn)
    {
        defects.insert(defects.end(), syn.begin(), syn.end());
        offsets.push_back(
            static_cast<std::uint32_t>(defects.size()));
        ++shots;
    }

    decoder::SyndromeBatch
    view() const
    {
        decoder::SyndromeBatch b;
        b.offsets = offsets;
        b.defects = defects;
        return b;
    }
};

/**
 * Mean decode time per shot, in microseconds.  Kinds that refuse a
 * syndrome (bare MWPM above its defect cap) have it skipped and
 * counted; the mean is over decoded shots.  When `batch` is given,
 * the accepted shots are also packed into it so the batch timing
 * below decodes exactly the same work.
 */
double
usPerShot(decoder::Decoder &dec, const Fixture &f,
          std::size_t *skipped, BatchStorage *batch = nullptr)
{
    // One warmup pass so lazily-sized scratch does not bill the
    // timed pass (and so refusals are discovered outside it).
    std::vector<const std::vector<std::uint32_t> *> accepted;
    for (const auto &syn : f.syndromes) {
        try {
            dec.decode(syn);
            accepted.push_back(&syn);
            if (batch)
                batch->add(syn);
        } catch (const FatalError &) {
        }
    }
    *skipped = f.syndromes.size() - accepted.size();
    if (accepted.empty())
        return 0.0;
    // Warmup decodes would otherwise double the fallback counts
    // reported next to the timings.
    dec.reset();
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto *syn : accepted)
        dec.decode(*syn);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    return 1e6 * secs / static_cast<double>(accepted.size());
}

/**
 * Mean decodeBatch time per shot, in microseconds: one batched call
 * over the packed CSR syndromes — the shape MonteCarloEngine feeds
 * decoders — so the delta vs usPerShot is the per-shot virtual-call
 * and vector-copy overhead (plus the predecode win when enabled).
 */
double
usPerShotBatch(decoder::Decoder &dec, const BatchStorage &batch,
               std::vector<std::uint32_t> &out)
{
    if (batch.shots == 0)
        return 0.0;
    out.resize(batch.shots);
    const decoder::SyndromeBatch view = batch.view();
    dec.decodeBatch(view, out);  // warm scratch
    dec.reset();
    const auto t0 = std::chrono::steady_clock::now();
    dec.decodeBatch(view, out);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    return 1e6 * secs / static_cast<double>(batch.shots);
}

} // namespace

int
main()
{
    using namespace traq;
    std::printf("=== Decoder throughput: all registered kinds, "
                "p = 1e-3 ===\n\n");
    // Dispatch level the sampler kernels run at while pre-sampling
    // the fixtures (decoders themselves are scalar code).
    std::printf("cpu-dispatch: %s (compiled %s)\n\n",
                cpuDispatchName(resolveCpuDispatch(CpuDispatch::Auto)),
                wordBackendCompiled());

    std::vector<Fixture> fixtures;
    fixtures.emplace_back("memory d=3", Fixture::makeMemory(3), 512);
    fixtures.emplace_back("memory d=5", Fixture::makeMemory(5), 512);
    fixtures.emplace_back("cnot d=3", Fixture::makeCnot(3), 512);
    fixtures.emplace_back("cnot d=5", Fixture::makeCnot(5), 256);
    const Fixture &hardest = fixtures.back();

    Table t({"circuit", "decoder", "us/shot", "batch us/shot",
             "no cache", "+predecode", "peeled", "us/round",
             "fallbacks", "skipped"});
    std::vector<std::pair<std::string, double>> budgetLines;
    std::vector<std::uint32_t> out;
    for (const Fixture &f : fixtures) {
        for (decoder::DecoderKind kind :
             decoder::registeredDecoderKinds()) {
            auto dec = decoder::makeDecoder(kind, f.graph);
            std::size_t skipped = 0;
            BatchStorage batch;
            const double us = usPerShot(*dec, f, &skipped, &batch);
            const double usRound = us / f.rounds;
            // Same accepted shots, batched: first through the plain
            // decodeBatch entry point, then with the predecode
            // peeler in front of the matcher.
            dec->reset();
            const double usBatch = usPerShotBatch(*dec, batch, out);
            // Reach cache forced off: the delta vs "batch us/shot"
            // (cache on by default) is the Dijkstra-sharing win.
            decoder::DecoderConfig noCacheCfg;
            noCacheCfg.reachCache = 0;
            auto decNoCache =
                decoder::makeDecoder(kind, f.graph, noCacheCfg);
            const double usNoCache =
                usPerShotBatch(*decNoCache, batch, out);
            decoder::DecoderConfig preCfg;
            preCfg.predecode = 1;
            auto decPre =
                decoder::makeDecoder(kind, f.graph, preCfg);
            const double usPre = usPerShotBatch(*decPre, batch, out);
            t.addRow({f.label, decoder::decoderKindName(kind),
                      fmtF(us, 1), fmtF(usBatch, 1),
                      fmtF(usNoCache, 1), fmtF(usPre, 1),
                      std::to_string(decPre->predecodedPairs()),
                      fmtF(usRound, 2),
                      std::to_string(dec->fallbacks()),
                      std::to_string(skipped)});
            if (&f == &hardest) {
                budgetLines.emplace_back(
                    decoder::decoderKindName(kind), usRound);
                budgetLines.emplace_back(
                    std::string(decoder::decoderKindName(kind)) +
                        "+batch+predecode",
                    usPre / f.rounds);
            }
        }
    }
    t.print();

    std::printf("\n(per-round latency on the hardest fixture, %s "
                "over %d rounds, vs the ~%g us Table I decode "
                "budget)\n",
                hardest.label.c_str(), hardest.rounds,
                kBudgetUsPerRound);
    for (const auto &[name, usRound] : budgetLines) {
        std::printf("decode-latency[%s]: %.2f us/round %s "
                    "(budget %g)\n",
                    name.c_str(), usRound,
                    usRound <= kBudgetUsPerRound ? "PASS" : "WARN",
                    kBudgetUsPerRound);
    }
    return 0;
}
