/**
 * @file
 * Table I reproduction: platform parameters and the derived timing
 * quantities quoted in Sec. IV.2 (QEC-cycle gate phase ~400 us, patch
 * move ~500 us = measurement time, reaction time 1 ms).
 */

#include <cstdio>

#include "src/arch/qec_cycle.hh"
#include "src/common/table.hh"
#include "src/platform/params.hh"

int
main()
{
    using namespace traq;
    auto p = platform::AtomArrayParams::paperDefaults();

    std::printf("=== Table I: platform parameters ===\n\n");
    Table t({"parameter", "value", "paper"});
    t.addRow({"site spacing l", fmtF(p.siteSpacing * 1e6, 0) + " um",
              "12 um"});
    t.addRow({"acceleration a", fmtF(p.acceleration, 0) + " m/s^2",
              "5500 m/s^2"});
    t.addRow({"gate time", fmtDuration(p.gateTime), "1 us"});
    t.addRow({"measure time", fmtDuration(p.measureTime), "500 us"});
    t.addRow({"decoding time", fmtDuration(p.decodeTime), "500 us"});
    t.print();

    std::printf("\n=== Derived timing (Sec. IV.2) ===\n\n");
    Table d({"quantity", "value", "paper"});
    d.addRow({"move 55 um (Table I calibration)",
              fmtDuration(platform::moveTime(55e-6, p)), "200 us"});
    for (int dist : {13, 21, 27, 33}) {
        auto cyc = arch::qecCycle(dist, p);
        d.addRow({"QEC cycle gate phase (d=" + std::to_string(dist) +
                      ")",
                  fmtDuration(cyc.seGatePhase), "~400 us"});
        d.addRow({"patch move (d=" + std::to_string(dist) + ")",
                  fmtDuration(cyc.patchMove), "~500 us @ d=27"});
        d.addRow({"full QEC cycle (d=" + std::to_string(dist) + ")",
                  fmtDuration(cyc.total), "~0.9 ms"});
    }
    d.addRow({"reaction time", fmtDuration(p.reactionTime()),
              "1 ms"});
    d.print();
    return 0;
}
