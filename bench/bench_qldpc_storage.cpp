/**
 * @file
 * Sec. IV.3.4 reproduction: hybrid dense qLDPC storage.  With a 10x
 * storage compression applied to the idle registers (4-6M qubits),
 * the paper expects a ~20% reduction in space footprint at unchanged
 * run time.
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/qldpc.hh"

int
main()
{
    using namespace traq;

    est::FactoringSpec spec;
    est::FactoringReport base = est::estimateFactoring(spec);

    std::printf("=== Sec. IV.3.4: dense qLDPC storage ===\n\n");
    Table t({"compression", "storage before", "storage after",
             "total qubits", "footprint saving", "access cycle"});
    for (double comp : {2.0, 5.0, 10.0, 20.0}) {
        est::QldpcStorageSpec qs;
        qs.compressionFactor = comp;
        auto r = est::applyQldpcStorage(base, spec, qs);
        t.addRow({fmtF(comp, 0) + "x",
                  fmtSi(r.surfaceStorageQubits, 1),
                  fmtSi(r.denseStorageQubits +
                            r.residualSurfaceQubits, 1),
                  fmtSi(r.physicalQubits, 1),
                  fmtF(100 * r.footprintReduction, 1) + "%",
                  fmtDuration(r.accessCycleTime)});
    }
    t.print();

    est::QldpcStorageSpec ten;
    auto r10 = est::applyQldpcStorage(base, spec, ten);
    std::printf("\nat 10x compression: %.1f%% footprint saving "
                "(paper: ~20%%), run time unchanged at %s\n",
                100 * r10.footprintReduction,
                fmtDuration(base.totalSeconds).c_str());
    std::printf("compute cycle %s vs storage-access cycle %s "
                "(longer qLDPC moves)\n",
                fmtDuration(r10.computeCycleTime).c_str(),
                fmtDuration(r10.accessCycleTime).c_str());
    return 0;
}
