/**
 * @file
 * Sec. IV.3.4 reproduction: hybrid dense qLDPC storage.  With a 10x
 * storage compression applied to the idle registers (4-6M qubits),
 * the paper expects a ~20% reduction in space footprint at unchanged
 * run time.
 *
 * The compression scan is a SweepRunner grid over the
 * "qldpc-storage" estimator, whose underlying factoring solve is
 * memoized — the whole sweep pays for one reference estimate.
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/sweep.hh"

int
main()
{
    using namespace traq;

    std::printf("=== Sec. IV.3.4: dense qLDPC storage ===\n\n");
    est::SweepRunner sweep(
        est::EstimateRequest{"qldpc-storage", {}});
    sweep.addAxis("compressionFactor", {2.0, 5.0, 10.0, 20.0});
    est::SweepResult sr = sweep.run();

    Table t({"compression", "storage before", "storage after",
             "total qubits", "footprint saving", "access cycle"});
    for (const est::EstimateResult &r : sr.results) {
        t.addRow({fmtF(r.params.at("compressionFactor"), 0) + "x",
                  fmtSi(r.metric("surfaceStorageQubits"), 1),
                  fmtSi(r.metric("denseStorageQubits") +
                            r.metric("residualSurfaceQubits"), 1),
                  fmtSi(r.metric("physicalQubits"), 1),
                  fmtF(100 * r.metric("footprintReduction"), 1) +
                      "%",
                  fmtDuration(r.metric("accessCycleTime"))});
    }
    t.print();

    const est::EstimateResult &r10 = sr.results[2]; // 10x point
    std::printf("\nat 10x compression: %.1f%% footprint saving "
                "(paper: ~20%%), run time unchanged at %s\n",
                100 * r10.metric("footprintReduction"),
                fmtDuration(r10.metric("totalSeconds")).c_str());
    std::printf("compute cycle %s vs storage-access cycle %s "
                "(longer qLDPC moves)\n",
                fmtDuration(r10.metric("computeCycleTime")).c_str(),
                fmtDuration(r10.metric("accessCycleTime")).c_str());
    return 0;
}
