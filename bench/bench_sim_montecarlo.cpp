/**
 * @file
 * Simulation cross-check of the logical error model (supports
 * Fig. 6(a)): run our own circuit-level Monte Carlo on surface-code
 * memory and transversal-CNOT circuits, decode with exact matching
 * (union-find fallback), and compare against the Eq. (2)/(4) shapes.
 *
 * Absolute rates differ from the paper's MLE-decoder calibration (a
 * matching decoder has a lower threshold), which is exactly the
 * "decoding factor" sensitivity the paper explores via alpha; what
 * must reproduce is the structure: error suppression with d, and
 * elevation of the per-round error with CNOT density at fixed d.
 */

#include <chrono>
#include <cstdio>

#include "src/codes/experiments.hh"
#include "src/common/table.hh"
#include "src/decoder/monte_carlo.hh"

int
main()
{
    using namespace traq;
    const double p = 0.003;
    decoder::McOptions opts;
    opts.shots = 20000;
    opts.seed = 20250521;

    std::printf("=== Memory: logical error per round vs distance "
                "(p = %.1e) ===\n\n", p);
    Table t({"d", "rounds", "pL(circuit)", "pL/round",
             "suppression vs d-2"});
    double prev = 0.0;
    for (int d : {3, 5}) {
        codes::SurfaceCode sc(d);
        auto e = codes::buildMemory(sc, 'Z', d,
                                    codes::NoiseParams::uniform(p));
        auto res = decoder::runMonteCarlo(e, opts);
        double perRound = res.perObservable[0].mean / d;
        t.addRow({std::to_string(d), std::to_string(d),
                  fmtE(res.perObservable[0].mean, 2),
                  fmtE(perRound, 2),
                  prev > 0 ? fmtF(prev / perRound, 1) + "x" : "-"});
        prev = perRound;
    }
    t.print();

    std::printf("\n=== Transversal CNOTs: per-round error vs CNOT "
                "density (d=3, p = %.1e) ===\n\n", p);
    Table c({"CNOTs per SE round (x)", "SE blocks",
             "pL(circuit)", "pL per SE round"});
    for (int perBatch : {1, 2, 4}) {
        codes::TransversalCnotSpec spec;
        spec.distance = 3;
        spec.cnotLayers = 8;
        spec.cnotsPerBatch = perBatch;
        spec.seRoundsPerBatch = 1;
        spec.noise = codes::NoiseParams::uniform(p);
        auto e = codes::buildTransversalCnot(spec);
        auto res = decoder::runMonteCarlo(e, opts);
        int seBlocks = 8 / perBatch;
        c.addRow({std::to_string(perBatch),
                  std::to_string(seBlocks),
                  fmtE(res.anyObservable.mean, 2),
                  fmtE(res.anyObservable.mean / seBlocks, 2)});
    }
    c.print();
    std::printf("\n(Eq. (4): per-round error scales like "
                "(1 + alpha x); total error still drops with x "
                "below threshold)\n");

    std::printf("\n=== Engine scaling: d=5 memory, sharded "
                "multithreaded decode ===\n\n");
    Table s({"threads", "shots/s", "speedup", "pL", "failures"});
    codes::SurfaceCode sc5(5);
    auto e5 = codes::buildMemory(sc5, 'Z', 5,
                                 codes::NoiseParams::uniform(p));
    decoder::McOptions scal = opts;
    scal.shots = 40000;
    // Graph construction happens once, outside the timed window, so
    // the table measures sampling+decoding throughput only.
    decoder::MonteCarloEngine engine(e5, scal);
    double baseRate = 0.0;
    for (unsigned threads : {1u, 2u, 4u}) {
        scal.threads = threads;
        auto t0 = std::chrono::steady_clock::now();
        auto res = engine.run(scal);
        auto dt = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
        double rate = static_cast<double>(res.shots) / dt;
        if (threads == 1)
            baseRate = rate;
        s.addRow({std::to_string(threads), fmtE(rate, 2),
                  fmtF(rate / baseRate, 2) + "x",
                  fmtE(res.perObservable[0].mean, 2),
                  std::to_string(res.perObservable[0].hits)});
    }
    s.print();
    std::printf("\n(failure counts are bit-identical across thread "
                "counts: shard i always samples RNG stream "
                "(seed, i))\n");
    return 0;
}
