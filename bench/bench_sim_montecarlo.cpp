/**
 * @file
 * Simulation cross-check of the logical error model (supports
 * Fig. 6(a)): run our own circuit-level Monte Carlo on surface-code
 * memory and transversal-CNOT circuits, decode with exact matching
 * (union-find fallback), and compare against the Eq. (2)/(4) shapes.
 *
 * Absolute rates differ from the paper's MLE-decoder calibration (a
 * matching decoder has a lower threshold), which is exactly the
 * "decoding factor" sensitivity the paper explores via alpha; what
 * must reproduce is the structure: error suppression with d, and
 * elevation of the per-round error with CNOT density at fixed d.
 *
 * Also benchmarks the frame-sampler word backends (portable 64-bit
 * vs 4-lane and 8-lane wide bit-planes, common/word.hh), the full
 * sample->extract->decode hot path (the legacy wide256 per-shot
 * pipeline vs the wide512 CSR-block pipeline — both sides with the
 * reach cache pinned off so the line measures pipeline shape, not
 * cache state — and the previous generation of that pipeline —
 * baseline codegen, scalar extraction, no memo — vs the current
 * full stack of runtime CPU dispatch, transpose extraction, decode
 * memoization, the process-global syndrome memo and the MWPM reach
 * cache; the "hotpath-speedup[...]" / "hotpath-speedup-vs-pr7[...]"
 * / "decode-memo-hit-rate[...]" / "cross-batch-memo-hit-rate[...]"
 * lines record the wins), the compiled-artifact cache over a
 * SweepRunner seed grid ("compile-cache-speedup[...]"), and the
 * sharded engine's thread scaling; the final
 * "parallel-efficiency@4" line is consumed by
 * scripts/perf_smoke.sh.
 */

#include <chrono>
#include <cstdio>

#include "src/codes/experiments.hh"
#include "src/common/assert.hh"
#include "src/common/table.hh"
#include "src/common/word.hh"
#include "src/decoder/compile_cache.hh"
#include "src/decoder/global_memo.hh"
#include "src/decoder/monte_carlo.hh"
#include "src/estimator/estimator.hh"
#include "src/estimator/sweep.hh"
#include "src/sim/frame.hh"

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Raw sampler throughput for one backend: sampleInto +
 * extractSyndromes (no decoding), the exact per-batch work the
 * Monte-Carlo engine performs before handing shots to the decoder.
 */
double
samplerShotsPerSec(const traq::codes::Experiment &e, unsigned lanes,
                   std::uint64_t shots)
{
    using namespace traq;
    sim::FrameSimulator fs(1234, lanes);
    sim::FrameBatch batch;
    std::vector<std::uint64_t> live(lanes, ~0ULL);
    std::vector<std::vector<std::uint32_t>> syndromes(64ULL * lanes);
    // Warm allocations outside the timed window.
    fs.sampleInto(e.circuit, batch);
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    while (done < shots) {
        fs.sampleInto(e.circuit, batch);
        for (auto &s : syndromes)
            s.clear();
        sim::extractSyndromes(batch, live, syndromes);
        done += batch.shots();
    }
    return static_cast<double>(done) / secondsSince(t0);
}

/**
 * End-to-end hot-path throughput, legacy shape: the pre-refactor
 * pipeline of sampleInto + extractSyndromes into 64 * lanes
 * per-shot vectors + one virtual decode() call (with its vector
 * copy) per shot.  The reach cache is pinned off here and in
 * blockPipelineShotsPerSec: the hotpath-speedup line compares
 * pipeline *shapes*, and the default-on cache accelerates the
 * per-shot comparator enough to push the ratio under 1x on small
 * graphs — equal cache state keeps the comparison meaningful.
 */
double
legacyPipelineShotsPerSec(const traq::codes::Experiment &e,
                          const traq::decoder::DecodeGraph &graph,
                          unsigned lanes, std::uint64_t shots)
{
    using namespace traq;
    sim::FrameSimulator fs(1234, lanes);
    sim::FrameBatch batch;
    std::vector<std::uint64_t> live(lanes, ~0ULL);
    std::vector<std::vector<std::uint32_t>> syndromes(64ULL * lanes);
    decoder::DecoderConfig cfg;
    cfg.reachCache = 0;  // equal cache state on both sides
    auto dec = decoder::makeDecoder(decoder::DecoderKind::Fallback,
                                    graph, cfg);
    fs.sampleInto(e.circuit, batch);  // warm allocations
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    while (done < shots) {
        fs.sampleInto(e.circuit, batch);
        for (auto &s : syndromes)
            s.clear();
        sim::extractSyndromes(batch, live, syndromes);
        for (const auto &s : syndromes)
            dec->decode(s);
        done += batch.shots();
    }
    return static_cast<double>(done) / secondsSince(t0);
}

/**
 * End-to-end hot-path throughput, block shape: sampleInto +
 * extractSyndromeBlock (CSR, no per-shot vectors) + one
 * decodeBatch call per batch, optionally with the predecode fast
 * path peeling isolated pairs before the matcher.
 */
double
blockPipelineShotsPerSec(const traq::codes::Experiment &e,
                         const traq::decoder::DecodeGraph &graph,
                         unsigned lanes, std::uint64_t shots,
                         bool predecode)
{
    using namespace traq;
    sim::FrameSimulator fs(1234, lanes);
    sim::FrameBatch batch;
    sim::SyndromeBlock block;
    std::vector<std::uint64_t> live(lanes, ~0ULL);
    std::vector<std::uint32_t> predicted(64ULL * lanes);
    decoder::DecoderConfig cfg;
    cfg.predecode = predecode ? 1 : 0;
    cfg.reachCache = 0;  // match legacyPipelineShotsPerSec
    auto dec = decoder::makeDecoder(decoder::DecoderKind::Fallback,
                                    graph, cfg);
    fs.sampleInto(e.circuit, batch);  // warm allocations
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    while (done < shots) {
        fs.sampleInto(e.circuit, batch);
        sim::extractSyndromeBlock(batch, live, block);
        decoder::SyndromeBatch view;
        view.offsets = block.offsets;
        view.defects = block.defects;
        dec->decodeBatch(view, predicted);
        done += batch.shots();
    }
    return static_cast<double>(done) / secondsSince(t0);
}

/**
 * Full-stack hot-path throughput: the engine's exact per-batch work
 * (sample, block extraction, sorted + optionally memoized decode),
 * parameterized over the generations of the pipeline.  `previous`
 * reproduces the pre-dispatch shape — baseline codegen, scalar
 * two-pass extraction, no memo, no reach cache — while the default
 * runs the current stack: runtime-dispatched kernels, transpose
 * extraction, per-batch decode memoization backed by the
 * process-global syndrome memo (caching tier 1), MWPM reach cache.
 *
 * `crossBatchRate` reports the fraction of shots served without a
 * decoder call once the global tier joins in: within-batch memo
 * hits plus cross-batch global hits, over all shots.  It is >= the
 * per-batch `memoHitRate` by construction — the global tier only
 * adds hits the batch-local memo cannot see.
 */
double
fullStackShotsPerSec(const traq::codes::Experiment &e,
                     const traq::decoder::DecodeGraph &graph,
                     unsigned lanes, std::uint64_t shots,
                     bool previous, double *memoHitRate = nullptr,
                     double *crossBatchRate = nullptr)
{
    using namespace traq;
    sim::FrameSimulator fs(1234, lanes,
                           previous ? CpuDispatch::Baseline
                                    : CpuDispatch::Auto);
    sim::FrameBatch batch;
    sim::SyndromeBlock block;
    std::vector<std::uint64_t> live(lanes, ~0ULL);
    std::vector<std::uint32_t> predicted(64ULL * lanes);
    decoder::DecoderConfig cfg;
    cfg.predecode = 1;
    cfg.reachCache = previous ? 0 : 1;
    auto dec = decoder::makeDecoder(decoder::DecoderKind::Fallback,
                                    graph, cfg);
    decoder::BatchDecodeScratch scratch;
    decoder::GlobalDecodeMemo *global = nullptr;
    decoder::DecodeSetupKey setup{};
    if (!previous) {
        global = &decoder::GlobalDecodeMemo::instance();
        // Start from an empty global tier so the reported hit rates
        // measure this run, not whatever main() decoded earlier.
        global->clear();
        setup = decoder::decodeSetupKey(
            graph, decoder::DecoderKind::Fallback, cfg);
    }
    fs.sampleInto(e.circuit, batch);  // warm allocations
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    std::uint64_t memoHits = 0;
    std::uint64_t globalHits = 0;
    while (done < shots) {
        fs.sampleInto(e.circuit, batch);
        if (previous)
            sim::extractSyndromeBlockScalar(batch, live, block);
        else
            sim::extractSyndromeBlock(batch, live, block);
        decoder::SyndromeBatch view;
        view.offsets = block.offsets;
        view.defects = block.defects;
        const auto st = decoder::decodeBatchSorted(
            *dec, view, predicted, scratch, !previous, global,
            setup);
        memoHits += st.memoHits;
        globalHits += st.globalHits;
        done += batch.shots();
    }
    if (memoHitRate)
        *memoHitRate =
            done ? static_cast<double>(memoHits) / done : 0.0;
    if (crossBatchRate)
        *crossBatchRate =
            done ? static_cast<double>(memoHits + globalHits) / done
                 : 0.0;
    return static_cast<double>(done) / secondsSince(t0);
}

} // namespace

int
main()
{
    using namespace traq;
    const double p = 0.003;
    decoder::McOptions opts;
    opts.shots = 20000;
    opts.seed = 20250521;

    std::printf("=== Memory: logical error per round vs distance "
                "(p = %.1e) ===\n\n", p);
    Table t({"d", "rounds", "pL(circuit)", "pL/round",
             "suppression vs d-2"});
    double prev = 0.0;
    for (int d : {3, 5}) {
        codes::SurfaceCode sc(d);
        auto e = codes::buildMemory(sc, 'Z', d,
                                    codes::NoiseParams::uniform(p));
        auto res = decoder::runMonteCarlo(e, opts);
        double perRound = res.perObservable[0].mean / d;
        t.addRow({std::to_string(d), std::to_string(d),
                  fmtE(res.perObservable[0].mean, 2),
                  fmtE(perRound, 2),
                  prev > 0 ? fmtF(prev / perRound, 1) + "x" : "-"});
        prev = perRound;
    }
    t.print();

    std::printf("\n=== Transversal CNOTs: per-round error vs CNOT "
                "density (d=3, p = %.1e) ===\n\n", p);
    Table c({"CNOTs per SE round (x)", "SE blocks",
             "pL(circuit)", "pL per SE round"});
    for (int perBatch : {1, 2, 4}) {
        codes::TransversalCnotSpec spec;
        spec.distance = 3;
        spec.cnotLayers = 8;
        spec.cnotsPerBatch = perBatch;
        spec.seRoundsPerBatch = 1;
        spec.noise = codes::NoiseParams::uniform(p);
        auto e = codes::buildTransversalCnot(spec);
        auto res = decoder::runMonteCarlo(e, opts);
        int seBlocks = 8 / perBatch;
        c.addRow({std::to_string(perBatch),
                  std::to_string(seBlocks),
                  fmtE(res.anyObservable.mean, 2),
                  fmtE(res.anyObservable.mean / seBlocks, 2)});
    }
    c.print();
    std::printf("\n(Eq. (4): per-round error scales like "
                "(1 + alpha x); total error still drops with x "
                "below threshold)\n");

    // The level the kernels actually run at (cpuid / env), next to
    // the flags the rest of the library was compiled with.
    std::printf("\ncpu-dispatch: %s (compiled %s)\n",
                cpuDispatchName(resolveCpuDispatch(CpuDispatch::Auto)),
                wordBackendCompiled());

    std::printf("\n=== Sampler word backends: d=5 memory, "
                "sample+extract (no decode), compiled=%s ===\n\n",
                wordBackendCompiled());
    {
        codes::SurfaceCode sc5(5);
        auto e5 = codes::buildMemory(
            sc5, 'Z', 5, codes::NoiseParams::uniform(1e-3));
        const std::uint64_t shots = 1 << 21;
        Table b({"backend", "lanes", "shots/s", "speedup"});
        const double scalarRate = samplerShotsPerSec(e5, 1, shots);
        b.addRow({wordBackendName(WordBackend::Scalar64), "1",
                  fmtE(scalarRate, 2), "1.00x"});
        const double wideRate =
            samplerShotsPerSec(e5, kWideWordLanes, shots);
        b.addRow({wordBackendName(WordBackend::Wide),
                  std::to_string(kWideWordLanes), fmtE(wideRate, 2),
                  fmtF(wideRate / scalarRate, 2) + "x"});
        const double wide512Rate =
            samplerShotsPerSec(e5, kWide512WordLanes, shots);
        b.addRow({wordBackendName(WordBackend::Wide512),
                  std::to_string(kWide512WordLanes),
                  fmtE(wide512Rate, 2),
                  fmtF(wide512Rate / scalarRate, 2) + "x"});
        b.print();
        std::printf("\nwide-vs-scalar64 sampler speedup: %.2fx "
                    "(target >= 2x)\n", wideRate / scalarRate);
        std::printf("wide512-vs-scalar64 sampler speedup: %.2fx\n",
                    wide512Rate / scalarRate);
    }

    std::printf("\n=== Hot path: sample + extract + decode, legacy "
                "wide256 per-shot pipeline vs wide512 CSR-block "
                "pipeline (p = 1e-3) ===\n\n");
    {
        Table h({"config", "pipeline", "lanes", "shots/s",
                 "speedup"});
        for (int d : {3, 5}) {
            codes::SurfaceCode sc(d);
            auto e = codes::buildMemory(
                sc, 'Z', d, codes::NoiseParams::uniform(1e-3));
            decoder::DecodeGraph graph =
                decoder::DecodeGraph::build(e);
            const std::uint64_t shots = d == 3 ? 1 << 17 : 1 << 16;
            const std::string cfg =
                "memory d=" + std::to_string(d);
            const double legacy = legacyPipelineShotsPerSec(
                e, graph, kWideWordLanes, shots);
            h.addRow({cfg, "per-shot vectors + decode()",
                      std::to_string(kWideWordLanes),
                      fmtE(legacy, 2), "1.00x"});
            const double block = blockPipelineShotsPerSec(
                e, graph, kWide512WordLanes, shots, false);
            h.addRow({cfg, "CSR block + decodeBatch",
                      std::to_string(kWide512WordLanes),
                      fmtE(block, 2),
                      fmtF(block / legacy, 2) + "x"});
            const double peeled = blockPipelineShotsPerSec(
                e, graph, kWide512WordLanes, shots, true);
            h.addRow({cfg, "CSR block + batch + predecode",
                      std::to_string(kWide512WordLanes),
                      fmtE(peeled, 2),
                      fmtF(peeled / legacy, 2) + "x"});
            // This PR's generation gap: the previous pipeline shape
            // (baseline codegen, scalar extraction, no memo, no
            // reach cache) vs the full current stack.
            const double prior = fullStackShotsPerSec(
                e, graph, kWide512WordLanes, shots, true);
            h.addRow({cfg, "prev gen (baseline+scalar extract)",
                      std::to_string(kWide512WordLanes),
                      fmtE(prior, 2), fmtF(prior / legacy, 2) + "x"});
            double memoHitRate = 0.0;
            double crossBatchRate = 0.0;
            const double full = fullStackShotsPerSec(
                e, graph, kWide512WordLanes, shots, false,
                &memoHitRate, &crossBatchRate);
            h.addRow({cfg, "dispatch+transpose+memo+reach-cache",
                      std::to_string(kWide512WordLanes),
                      fmtE(full, 2), fmtF(full / legacy, 2) + "x"});
            // Machine-readable records of the hot-path wins (the
            // acceptance lines; scripts/perf_smoke.sh collects
            // them).  "hotpath-speedup" keeps its historical
            // meaning (block pipeline vs per-shot legacy, reach
            // cache pinned off on both sides so it measures the
            // pipeline shape; target >= 1x);
            // "hotpath-speedup-vs-pr7" is the cross-generation gate
            // (target >= 1.5x at d=5 on AVX2-capable hardware);
            // "cross-batch-memo-hit-rate" is the caching-tier-1
            // acceptance line (must be >= the per-batch
            // "decode-memo-hit-rate" — the global tier only adds
            // hits).
            std::printf("hotpath-speedup[memory d=%d]: %.2fx "
                        "(wide512 block+batch+predecode vs wide256 "
                        "per-shot, equal cache state, %s)\n",
                        d, peeled / legacy,
                        cpuDispatchName(
                            resolveCpuDispatch(CpuDispatch::Auto)));
            std::printf("hotpath-speedup-vs-pr7[memory d=%d]: "
                        "%.2fx (dispatch+transpose+memo+reach-cache "
                        "vs baseline+scalar-extract)\n",
                        d, full / prior);
            std::printf("decode-memo-hit-rate[memory d=%d]: %.3f\n",
                        d, memoHitRate);
            std::printf("cross-batch-memo-hit-rate[memory d=%d]: "
                        "%.3f (per-batch %.3f + process-global "
                        "tier)\n",
                        d, crossBatchRate, memoHitRate);
        }
        std::printf("\n");
        h.print();
    }

    std::printf("\n=== Compile cache: SweepRunner seed grid over a "
                "shared d=5 memory circuit (caching tier 2) "
                "===\n\n");
    {
        // Every job shares one circuit and differs only in the RNG
        // seed — the "more statistics" grid a sweep user actually
        // runs.  With the compiled-artifact cache off each job pays
        // Circuit -> DEM -> DecodeGraph compilation again; with it
        // on, the grid compiles once.  The global syndrome memo is
        // pinned off on both sides so only tier 2 differs, and the
        // cache is cleared before each pass so neither inherits the
        // other's artifacts.
        est::EstimateRequest base;
        base.kind = "mc-logical-error";
        base.params = {{"distance", 5},
                       {"shots", 256},
                       {"globalMemo", 0}};
        std::vector<double> seeds;
        for (int i = 0; i < 24; ++i)
            seeds.push_back(4000.0 + i);
        auto sweepSeconds = [&](double compileCache) {
            decoder::clearCompileCache();
            est::EstimateRequest req = base;
            req.params["compileCache"] = compileCache;
            est::SweepOptions so;
            so.threads = 1;
            est::SweepRunner runner(req, so);
            runner.addAxis("seed", seeds);
            const auto t0 = std::chrono::steady_clock::now();
            const auto res = runner.run();
            const double sec = secondsSince(t0);
            TRAQ_REQUIRE(res.results.size() == seeds.size(),
                         "compile-cache sweep lost jobs");
            return sec;
        };
        sweepSeconds(1.0);  // warm one-time registry/alloc costs
        const double off = sweepSeconds(0.0);
        const double on = sweepSeconds(1.0);
        std::printf("compile-cache-speedup[mc-sweep d=5]: %.2fx "
                    "(cache-off %.3f s vs cache-on %.3f s over %zu "
                    "seed jobs; target >= 1.2x)\n",
                    off / on, off, on, seeds.size());
    }

    std::printf("\n=== Engine scaling: d=5 memory, sharded "
                "multithreaded decode ===\n\n");
    Table s({"threads", "shots/s", "speedup", "pL", "failures"});
    codes::SurfaceCode sc5(5);
    auto e5 = codes::buildMemory(sc5, 'Z', 5,
                                 codes::NoiseParams::uniform(p));
    decoder::McOptions scal = opts;
    scal.shots = 40000;
    // Graph construction happens once, outside the timed window, so
    // the table measures sampling+decoding throughput only.
    decoder::MonteCarloEngine engine(e5, scal);
    double baseRate = 0.0;
    double rate4 = 0.0;
    for (unsigned threads : {1u, 2u, 4u}) {
        scal.threads = threads;
        auto t0 = std::chrono::steady_clock::now();
        auto res = engine.run(scal);
        double rate = static_cast<double>(res.shots) /
                      secondsSince(t0);
        if (threads == 1)
            baseRate = rate;
        if (threads == 4)
            rate4 = rate;
        s.addRow({std::to_string(threads), fmtE(rate, 2),
                  fmtF(rate / baseRate, 2) + "x",
                  fmtE(res.perObservable[0].mean, 2),
                  std::to_string(res.perObservable[0].hits)});
    }
    s.print();
    std::printf("\n(failure counts are bit-identical across thread "
                "counts: shard i always samples RNG stream "
                "(seed, i))\n");
    // Machine-readable: scripts/perf_smoke.sh gates on this.
    std::printf("parallel-efficiency@4: %.3f\n",
                baseRate > 0 ? rate4 / (4.0 * baseRate) : 0.0);
    return 0;
}
