/**
 * @file
 * Fig. 6 reproduction.
 *  (a) the Eq. (4) ansatz against the reference transversal-CNOT
 *      dataset, with the (alpha, C) fit at fixed Lambda — the paper
 *      reports alpha ~ 1/6;
 *  (a') the same extraction from fully in-repo Monte Carlo: the
 *      "mc-alpha" estimator simulates memory anchors and a
 *      transversal-CNOT (d, x) grid with the wide-bit-plane frame
 *      sampler and fits the same ansatz — no embedded data;
 *  (a'') the full (d, x) grid with the two-pass correlated decoder:
 *      correlation reweighting across transversal-CNOT hyperedges
 *      restores monotone cross-distance suppression, so the fit can
 *      use both d = 3 and d = 5 CNOT circuits (plain matching is
 *      pinned to a single CNOT distance);
 *  (b) space-time volume per logical CNOT vs SE rounds per CNOT
 *      (Eq. (6)); the optimum sits at <= 1 SE round per CNOT.
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/simulation.hh"
#include "src/model/error_model.hh"
#include "src/model/fit.hh"

int
main()
{
    using namespace traq;
    using namespace traq::model;

    std::printf("=== Fig. 6(a): Eq. (4) fit to transversal-CNOT "
                "data ===\n\n");
    auto data = referenceRef17Data();
    CnotFit fit = fitCnotModel(data, /*fixLambda=*/20.0);
    std::printf("fit at fixed Lambda_MLE = 20: alpha = %.3f "
                "(paper: 1/6 = 0.167), C = %.3f, rms log-residual = "
                "%.3f\n\n",
                fit.alpha, fit.prefactorC, fit.rmsLogResidual);

    Table t({"d", "x (CNOT/round)", "data pL", "model pL"});
    ErrorModelParams fitted;
    fitted.alpha = fit.alpha;
    fitted.prefactorC = fit.prefactorC;
    fitted.pThres = 20.0 * fitted.pPhys;
    for (const auto &pt : data) {
        t.addRow({std::to_string(pt.d), fmtF(pt.x, 2),
                  fmtE(pt.pL, 2),
                  fmtE(cnotLogicalError(pt.d, pt.x, fitted), 2)});
    }
    t.print();

    std::printf("\n=== Fig. 6(a'): alpha from in-repo Monte Carlo "
                "(mc-alpha estimator) ===\n\n");
    {
        est::EstimateRequest req{
            "mc-alpha",
            {{"p", 4e-3}, {"shots", 8000}, {"seed", 2025}}};
        est::EstimateResult mc =
            est::makeEstimator("mc-alpha")->estimate(req);
        std::printf("simulated fit: alpha = %.3f (paper: 1/6 = "
                    "0.167), Lambda(matching, p=4e-3) = %.2f, "
                    "C = %.3f, rms log-residual = %.3f\n",
                    mc.metric("alpha"), mc.metric("lambda"),
                    mc.metric("prefactorC"),
                    mc.metric("rmsLogResidual"));
        std::printf("(%.0f grid points, %.0f shots; memory anchors "
                    "pin Lambda, the x-grid bends out alpha)\n",
                    mc.metric("dataPoints"),
                    mc.metric("totalShots"));
    }

    std::printf("\n=== Fig. 6(a''): full (d, x) grid with the "
                "correlated decoder ===\n\n");
    {
        est::McAlphaSpec spec;
        spec.pPhys = 4e-3;
        spec.shots = 6000;
        spec.cnotDMax = 5;  // cross-distance CNOT data in the fit
        spec.decoder = decoder::DecoderKind::Correlated;
        est::EstimateRequest req{"mc-alpha", {}};
        est::EstimateResult mc =
            est::makeMcAlphaEstimator(spec)->estimate(req);
        std::printf("correlated-decoder fit over d in {3, 5}: "
                    "alpha = %.3f (paper: 1/6 = 0.167), "
                    "Lambda = %.2f, C = %.3f, rms log-residual = "
                    "%.3f\n",
                    mc.metric("alpha"), mc.metric("lambda"),
                    mc.metric("prefactorC"),
                    mc.metric("rmsLogResidual"));
        std::printf("(%.0f grid points, %.0f shots; two-pass "
                    "partner reweighting restores d=5 < d=3 "
                    "per-CNOT suppression, unlocking the cross-d "
                    "grid)\n",
                    mc.metric("dataPoints"),
                    mc.metric("totalShots"));
    }

    std::printf("\n=== Fig. 6(b): space-time volume per CNOT "
                "(Eq. (6), p_targ = 1e-12) ===\n\n");
    Table v({"SE rounds per CNOT", "x", "required d",
             "volume [d^2(4/x+1)]", "alpha=1/2 volume"});
    ErrorModelParams p;             // paper defaults, alpha = 1/6
    ErrorModelParams pHalf;
    pHalf.alpha = 0.5;
    const double ptarg = 1e-12;
    for (double rounds : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        double x = 1.0 / rounds;
        int d = requiredDistanceCnot(ptarg, x, p);
        v.addRow({fmtF(rounds, 2), fmtF(x, 2), std::to_string(d),
                  fmtF(volumePerCnot(x, ptarg, p), 0),
                  fmtF(volumePerCnot(x, ptarg, pHalf), 0)});
    }
    v.print();
    std::printf("\noptimal CNOTs per SE round (alpha=1/6): %.2f "
                "(paper: optimum at >= 1 CNOT per round)\n",
                optimalCnotsPerRound(ptarg, p));
    std::printf("effective threshold at x=1: %.2f%% (paper: "
                "0.86%%); alpha=1/2: %.2f%% (paper: 0.67%%)\n",
                100 * effectiveThreshold(1.0, p),
                100 * effectiveThreshold(1.0, pHalf));
    return 0;
}
