/**
 * @file
 * Fig. 12 reproduction: space usage and logical-error contribution of
 * the components during the two main factoring subroutines (table
 * lookup and addition).  Paper shape: the CNOT fan-out dominates
 * space and error during lookup; the factories dominate during
 * addition; 4-6 M qubits idle in storage.
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/shor.hh"

namespace {

void
printLedger(const traq::arch::SpaceTimeLedger &ledger,
            const char *title)
{
    using namespace traq;
    std::printf("--- %s ---\n", title);
    Table t({"component", "qubits", "space %", "error share %"});
    auto space = ledger.spaceFractions();
    auto err = ledger.errorFractions();
    for (std::size_t i = 0; i < ledger.entries().size(); ++i) {
        const auto &e = ledger.entries()[i];
        t.addRow({e.name, fmtSi(e.qubits, 2),
                  fmtF(100 * space[i].second, 1),
                  fmtF(100 * err[i].second, 1)});
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace traq;
    est::FactoringSpec spec;
    est::FactoringReport r = est::estimateFactoring(spec);

    std::printf("=== Fig. 12: space and error breakdown (2048-bit "
                "factoring, d=%d) ===\n\n", r.distance);
    printLedger(r.lookupPhase, "during table lookup (Fig. 12 left)");
    printLedger(r.additionPhase,
                "during addition (Fig. 12 right)");

    std::printf("storage (idle) qubits: %s  (paper: 4-6M idling)\n",
                fmtSi(r.storageQubits, 1).c_str());
    std::printf("total error budget spent: algorithm %.2e, idle "
                "%.2e, runway %.2e, CCZ %.2e\n",
                r.algorithmLogicalError, r.idleError, r.runwayError,
                r.cczError);
    return 0;
}
