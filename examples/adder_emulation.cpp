/**
 * @file
 * Gate-level demonstration of the arithmetic path: emulate the
 * Cuccaro MAJ/UMA network and the runway-segmented addition on
 * random inputs, then walk a full windowed modular-exponentiation
 * step (lookup + add) classically — the arithmetic the factoring
 * estimator prices out.
 *
 *   adder_emulation [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "src/common/rng.hh"
#include "src/common/table.hh"
#include "src/gadgets/adder.hh"
#include "src/gadgets/lookup.hh"

int
main(int argc, char **argv)
{
    using namespace traq;

    std::uint64_t seed = argc > 1 ? std::atoll(argv[1]) : 7;
    Rng rng(seed);

    std::printf("=== Cuccaro ripple-carry emulation (gate level) "
                "===\n\n");
    Table t({"bits", "a", "b", "circuit a+b", "expected", "ok"});
    bool allOk = true;
    for (int bits : {8, 16, 32, 48}) {
        std::uint64_t mask = (bits >= 63) ? ~0ULL
                                          : ((1ULL << bits) - 1);
        std::uint64_t a = rng.next() & mask;
        std::uint64_t b = rng.next() & mask;
        std::uint64_t got = gadgets::cuccaroEmulate(a, b, bits);
        std::uint64_t want = (a + b) & mask;
        allOk = allOk && (got == want);
        t.addRow({std::to_string(bits), fmtE(double(a), 3),
                  fmtE(double(b), 3), fmtE(double(got), 3),
                  fmtE(double(want), 3),
                  got == want ? "yes" : "NO"});
    }
    t.print();

    std::printf("\n=== Runway-segmented addition (rsep sweep) "
                "===\n\n");
    Table s({"rsep", "trials", "failures"});
    for (int rsep : {4, 8, 16}) {
        int failures = 0;
        const int trials = 200;
        for (int i = 0; i < trials; ++i) {
            std::uint64_t a = rng.next() & ((1ULL << 40) - 1);
            std::uint64_t b = rng.next() & ((1ULL << 40) - 1);
            std::uint64_t got =
                gadgets::runwayAddEmulate(a, b, 40, rsep);
            if (got != ((a + b) & ((1ULL << 40) - 1)))
                ++failures;
        }
        s.addRow({std::to_string(rsep), std::to_string(trials),
                  std::to_string(failures)});
    }
    s.print();

    std::printf("\n=== Windowed modular-exponentiation step "
                "(lookup + add) ===\n\n");
    // One window of Shor's modular exponentiation: classically
    // precompute the table g^(w * 2^k) * m mod N for all window
    // values w, QROM-load the entry, add into the accumulator.
    const std::uint64_t N = 251 * 241;          // 60491
    const std::uint64_t g = 7;
    const int wExp = 3;
    std::vector<std::uint64_t> table(1 << wExp);
    for (std::uint64_t w = 0; w < table.size(); ++w) {
        std::uint64_t v = 1;
        for (std::uint64_t i = 0; i < w; ++i)
            v = (v * g) % N;
        table[w] = v;
    }
    Table m({"window value", "QROM entry", "expected g^w mod N",
             "ok"});
    bool lookupOk = true;
    for (std::uint64_t w = 0; w < table.size(); ++w) {
        std::uint64_t loaded = gadgets::qromEmulate(table, w);
        std::uint64_t expect = table[w];
        lookupOk = lookupOk && (loaded == expect);
        m.addRow({std::to_string(w), std::to_string(loaded),
                  std::to_string(expect),
                  loaded == expect ? "yes" : "NO"});
    }
    m.print();

    std::printf("\n%s\n", (allOk && lookupOk)
                              ? "all gate-level emulations correct"
                              : "EMULATION FAILURES DETECTED");
    return (allOk && lookupOk) ? 0 : 1;
}
