/**
 * @file
 * Quantum-chemistry resource estimate (Sec. III.3): qubitized phase
 * estimation built from the same lookup and adder gadgets as
 * factoring, so the transversal O(d) clock speed-up carries over.
 *
 *   chemistry_estimate [spinOrbitals] [lambda_Ha] [accuracy_Ha]
 */

#include <cstdio>
#include <cstdlib>

#include "src/common/table.hh"
#include "src/estimator/chemistry.hh"

int
main(int argc, char **argv)
{
    using namespace traq;

    est::ChemistrySpec spec;   // FeMoCo-class default
    if (argc > 1)
        spec.spinOrbitals = std::atoi(argv[1]);
    if (argc > 2)
        spec.lambdaHam = std::atof(argv[2]);
    if (argc > 3)
        spec.energyError = std::atof(argv[3]);

    est::ChemistryReport r = est::estimateChemistry(spec);

    std::printf("=== Ground-state energy estimation (N=%d, "
                "lambda=%.0f Ha, eps=%.1e Ha) ===\n\n",
                spec.spinOrbitals, spec.lambdaHam,
                spec.energyError);
    Table t({"quantity", "value"});
    t.addRow({"qubitization iterations", fmtE(r.iterations, 3)});
    t.addRow({"lookup address bits",
              std::to_string(r.lookupAddressBits)});
    t.addRow({"CCZ per iteration", fmtF(r.cczPerIteration, 0)});
    t.addRow({"CCZ total", fmtE(r.cczTotal, 2)});
    t.addRow({"code distance", std::to_string(r.distance)});
    t.addRow({"time per iteration",
              fmtDuration(r.timePerIteration)});
    t.addRow({"physical qubits", fmtSi(r.physicalQubits, 1)});
    t.addRow({"run time (transversal)",
              fmtDuration(r.totalSeconds)});
    t.addRow({"run time (lattice surgery clock)",
              fmtDuration(r.latticeSurgerySeconds)});
    t.addRow({"transversal speed-up", fmtF(r.speedup, 1) + "x"});
    t.print();

    std::printf("\nThe PREPARE/SELECT decomposition follows "
                "Sec. III.3: lookups dominate PREPARE; SELECT adds "
                "phase-gradient additions.\n");
    return 0;
}
