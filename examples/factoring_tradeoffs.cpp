/**
 * @file
 * Explore the factoring trade-off space from the command line:
 *
 *   factoring_tradeoffs [nBits] [wExp] [wMul] [rsep]
 *
 * prints the full estimate for the requested configuration plus a
 * small neighbourhood sweep, showing how window sizes and runway
 * separation trade lookup time, addition time, factories and space.
 */

#include <cstdio>
#include <cstdlib>

#include "src/common/table.hh"
#include "src/estimator/shor.hh"
#include "src/estimator/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace traq;

    est::FactoringSpec spec;
    if (argc > 1)
        spec.nBits = std::atoi(argv[1]);
    if (argc > 2)
        spec.wExp = std::atoi(argv[2]);
    if (argc > 3)
        spec.wMul = std::atoi(argv[3]);
    if (argc > 4)
        spec.rsep = std::atoi(argv[4]);

    est::FactoringReport rep = est::estimateFactoring(spec);
    std::printf("=== %d-bit factoring, wexp=%d wmul=%d rsep=%d "
                "===\n\n",
                spec.nBits, spec.wExp, spec.wMul, spec.rsep);
    Table t({"quantity", "value"});
    t.addRow({"lookup-additions", fmtE(rep.lookupAdditions, 3)});
    t.addRow({"distance / rpad / factories",
              std::to_string(rep.distance) + " / " +
                  std::to_string(rep.rpad) + " / " +
                  std::to_string(rep.factories)});
    t.addRow({"time: lookup + addition",
              fmtDuration(rep.timePerLookup) + " + " +
                  fmtDuration(rep.timePerAddition)});
    t.addRow({"physical qubits", fmtSi(rep.physicalQubits, 1)});
    t.addRow({"run time", fmtDuration(rep.totalSeconds)});
    t.addRow({"volume [qubit-s]", fmtE(rep.spacetimeVolume, 2)});
    t.addRow({"feasible", rep.feasible ? "yes" : "no"});
    t.print();

    std::printf("\n=== Neighbourhood sweep ===\n\n");
    // A SweepRunner grid around the requested point, over an
    // estimator carrying the full spec as its base.
    std::vector<double> weValues, rsepValues;
    for (int we : {spec.wExp - 1, spec.wExp, spec.wExp + 1})
        if (we >= 1)
            weValues.push_back(we);
    for (int rsep : {spec.rsep / 2, spec.rsep, spec.rsep * 2})
        if (rsep >= 8)
            rsepValues.push_back(rsep);
    est::SweepRunner sweep(
        std::shared_ptr<const est::Estimator>(
            est::makeFactoringEstimator(spec)),
        est::EstimateRequest{"factoring", {}});
    sweep.addAxis("wExp", weValues).addAxis("rsep", rsepValues);
    est::SweepResult sr = sweep.run();

    Table s({"wexp", "wmul", "rsep", "qubits", "run time",
             "volume"});
    for (const est::EstimateResult &r : sr.results) {
        s.addRow({std::to_string(
                      static_cast<int>(r.params.at("wExp"))),
                  std::to_string(spec.wMul),
                  std::to_string(
                      static_cast<int>(r.params.at("rsep"))),
                  fmtSi(r.metric("physicalQubits"), 1),
                  fmtDuration(r.metric("totalSeconds")),
                  fmtE(r.metric("spacetimeVolume"), 2)});
    }
    s.print();
    return 0;
}
