/**
 * @file
 * Line-delimited JSON estimate server: the shell-scriptable face of
 * the layered service tier (src/service/job_service.hh).
 *
 * Reads one EstimateRequest JSON object — or a batch as a JSON array
 * of objects — per stdin line and schedules everything on a
 * JobService as it reads: there is no read-everything phase, so the
 * first result appears while later requests are still being typed
 * (or piped).  Blank lines and #-comment lines are skipped.
 *
 * Two output modes, both line-buffered (each result line is flushed
 * as it is written):
 *
 *  - streaming (default): one line per input line in *completion*
 *    order, tagged with the input-line ordinal (wire.hh):
 *    {"index":N,...} for objects, {"index":N,"batch":[...]} for
 *    batch lines.  This is the mode the traq_dispatch sharder
 *    consumes.
 *  - --ordered: one line per input line in *input* order with the
 *    classic untagged payloads — the result object (est::toJson),
 *    an array of result objects, or {"error":"..."}.  Because
 *    outcomes are read back in submission order and estimators are
 *    deterministic, --ordered stdout is byte-identical for any
 *    --threads value (CI diffs exactly that).
 *
 *     $ echo '{"kind":"factoring","params":{"rsep":256}}' \
 *           | ./build/traq_serve --threads 4 --ordered
 *
 * Queue statistics (jobs, evaluations, cache hits, failures) go to
 * stderr, and only after stdout has been flushed and closed, so
 * stdout stays machine-consumable and a downstream consumer sees
 * end-of-results before any diagnostics exist.
 */

#include <charconv>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/assert.hh"
#include "src/common/serialize.hh"
#include "src/common/strings.hh"
#include "src/service/job_service.hh"
#include "src/service/validation.hh"
#include "src/service/wire.hh"

namespace {

using traq::service::JobService;

/** One accepted stdin line: an error, a single job, or a batch. */
struct Line
{
    std::size_t index = 0; //!< non-skipped input-line ordinal
    bool batch = false;
    std::vector<JobService::JobId> ids;
    std::size_t remaining = 0; //!< jobs not yet completed
    std::string error; //!< non-empty: the line never enqueued
};

/** Ordered-mode payload for a finished line (no tag, no newline). */
std::string
linePayload(JobService &queue, const Line &line)
{
    if (!line.error.empty())
        return "{\"error\":" + traq::jsonQuote(line.error) + "}";
    if (line.batch) {
        std::string out = "[";
        for (std::size_t i = 0; i < line.ids.size(); ++i) {
            if (i)
                out += ',';
            out += queue.wait(line.ids[i]).toJson();
        }
        out += ']';
        return out;
    }
    return queue.wait(line.ids[0]).toJson();
}

/** Write one output line and flush it (line-buffered contract).
 *  One fwrite per line so concurrent emitters never interleave. */
void
emitLine(std::string payload)
{
    payload += '\n';
    std::fwrite(payload.data(), 1, payload.size(), stdout);
    std::fflush(stdout);
}

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [--threads N] [--cache on|off] "
        "[--cache-file PATH] [--ordered]\n"
        "  Reads one EstimateRequest JSON object (or an array of\n"
        "  them) per stdin line; streams one result line per input\n"
        "  line to stdout in completion order, tagged with the\n"
        "  input-line index.  --ordered emits untagged lines in\n"
        "  input order instead (byte-identical for any --threads).\n"
        "  Stats go to stderr after the output stream closes.\n"
        "  --cache-file persists the result cache across restarts\n"
        "  (append-only checksummed store; TRAQ_CACHE_FILE is the\n"
        "  env equivalent).\n",
        argv0);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    traq::service::JobQueueOptions opts;
    bool ordered = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        } else if ((arg == "--threads" || arg == "--cache" ||
                    arg == "--cache-file") &&
                   i + 1 < argc) {
            value = argv[++i];
        }
        if (arg == "--threads") {
            // Full-consumption parse: "4x" or "1e1" must be a usage
            // error, not a silently truncated thread count.
            unsigned n = 0;
            auto [ptr, ec] = std::from_chars(
                value.data(), value.data() + value.size(), n);
            if (ec != std::errc() ||
                ptr != value.data() + value.size() || n == 0)
                return usage(argv[0], 2);
            opts.threads = n;
        } else if (arg == "--cache") {
            if (value == "on")
                opts.cache = true;
            else if (value == "off")
                opts.cache = false;
            else
                return usage(argv[0], 2);
        } else if (arg == "--cache-file") {
            if (value.empty())
                return usage(argv[0], 2);
            opts.cacheFile = value;
        } else if (arg == "--ordered") {
            ordered = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            return usage(argv[0], 2);
        }
    }

    JobService queue(opts);

    // Emitter state shared between the reader (main) thread and the
    // emitter thread.  Ordered mode: a FIFO of lines, emitted
    // front-to-back with blocking waits.  Streaming mode: a job ->
    // line map; a line is emitted when its last job is announced by
    // waitCompleted().  Parse-error and empty-batch lines have no
    // jobs and are emitted directly by the reader (they are already
    // terminal; streaming order across sources is unspecified).
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Line>> fifo;
    std::unordered_map<JobService::JobId, std::shared_ptr<Line>>
        byJob;
    bool eof = false;

    std::thread emitter;
    if (ordered) {
        emitter = std::thread([&] {
            while (true) {
                std::shared_ptr<Line> line;
                {
                    std::unique_lock<std::mutex> lock(mu);
                    cv.wait(lock,
                            [&] { return eof || !fifo.empty(); });
                    if (fifo.empty())
                        return;
                    line = fifo.front();
                    fifo.pop_front();
                }
                emitLine(linePayload(queue, *line));
            }
        });
    } else {
        emitter = std::thread([&] {
            while (const std::optional<JobService::JobId> id =
                       queue.waitCompleted()) {
                std::shared_ptr<Line> line;
                {
                    std::lock_guard<std::mutex> lock(mu);
                    auto it = byJob.find(*id);
                    TRAQ_REQUIRE(it != byJob.end(),
                                 "completion for unknown job");
                    line = it->second;
                    byJob.erase(it);
                    if (--line->remaining)
                        continue;
                }
                emitLine(traq::service::wire::tagLine(
                    line->index, linePayload(queue, *line)));
            }
        });
    }

    std::size_t nextIndex = 0;
    std::string raw;
    while (std::getline(std::cin, raw)) {
        const std::string_view text = traq::trim(raw);
        if (text.empty() || text[0] == '#')
            continue;
        auto line = std::make_shared<Line>();
        line->index = nextIndex++;
        const traq::service::ParsedLine parsed =
            traq::service::parseRequestLine(text);
        if (!parsed.error.empty())
            line->error = parsed.error.message;
        line->batch = parsed.batch;
        if (ordered) {
            for (const traq::est::EstimateRequest &req :
                 parsed.requests)
                line->ids.push_back(queue.submit(req));
            std::lock_guard<std::mutex> lock(mu);
            fifo.push_back(std::move(line));
            cv.notify_one();
        } else {
            // Map the ids under the lock *as they are handed out*,
            // so a completion announced between submit and mapping
            // cannot race past the emitter.  The emitter only
            // blocks on mu briefly, never on this thread, so
            // holding mu across a backpressure-blocked submit is
            // deadlock-free (workers drain without mu).
            std::unique_lock<std::mutex> lock(mu);
            for (const traq::est::EstimateRequest &req :
                 parsed.requests) {
                const JobService::JobId id = queue.submit(req);
                line->ids.push_back(id);
                byJob.emplace(id, line);
            }
            line->remaining = line->ids.size();
            if (line->remaining == 0) {
                // No jobs to wait for (parse error or empty
                // batch): terminal now, emit from the reader.
                lock.unlock();
                emitLine(traq::service::wire::tagLine(
                    line->index, linePayload(queue, *line)));
            }
        }
    }
    if (ordered) {
        {
            std::lock_guard<std::mutex> lock(mu);
            eof = true;
        }
        cv.notify_all();
    } else {
        queue.closeSubmissions();
    }
    emitter.join();

    // Close the result stream before any diagnostics: a consumer
    // must see end-of-results strictly before stats exist.
    std::fflush(stdout);
    std::fclose(stdout);

    const traq::service::JobQueueStats stats = queue.stats();
    std::fprintf(stderr,
                 "traq_serve: %zu jobs, %zu evaluated, %zu cache "
                 "hits, %zu persistent hits, %zu failed, %u "
                 "threads\n",
                 stats.submitted, stats.evaluated, stats.cacheHits,
                 stats.persistentHits, stats.failed,
                 queue.threads());
    return 0;
}
