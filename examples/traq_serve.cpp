/**
 * @file
 * Line-delimited JSON estimate server: the shell-scriptable face of
 * the service front-end (src/service/job_queue.hh).
 *
 * Reads one EstimateRequest JSON object — or a batch as a JSON array
 * of objects — per stdin line, schedules everything on a JobQueue,
 * and writes one line per input line to stdout in input order: the
 * result object (est::toJson), an array of result objects for a
 * batch line, or {"error":"..."} when the line was malformed or the
 * estimate failed.  Blank lines and #-comment lines are skipped.
 * Because outcomes are read back in submission order and estimators
 * are deterministic, stdout is byte-identical for any --threads
 * value (CI diffs exactly that).
 *
 *     $ echo '{"kind":"factoring","params":{"rsep":256}}' \
 *           | ./build/traq_serve --threads 4
 *
 * Queue statistics (jobs, evaluations, cache hits, failures) go to
 * stderr so stdout stays machine-consumable.
 */

#include <charconv>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/assert.hh"
#include "src/common/json.hh"
#include "src/common/serialize.hh"
#include "src/common/strings.hh"
#include "src/service/job_queue.hh"

namespace {

using traq::service::JobQueue;

/** One stdin line: a parse error, a single job, or a batch. */
struct Line
{
    bool batch = false;
    std::vector<JobQueue::JobId> ids;
    std::string error;  //!< non-empty: the line never enqueued
};

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [--threads N] [--cache on|off] "
        "[--cache-file PATH]\n"
        "  Reads one EstimateRequest JSON object (or an array of\n"
        "  them) per stdin line; writes one result line per input\n"
        "  line to stdout in input order.  Stats go to stderr.\n"
        "  --cache-file persists the result cache across restarts\n"
        "  (append-only checksummed store; TRAQ_CACHE_FILE is the\n"
        "  env equivalent).\n",
        argv0);
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    traq::service::JobQueueOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        } else if ((arg == "--threads" || arg == "--cache" ||
                    arg == "--cache-file") &&
                   i + 1 < argc) {
            value = argv[++i];
        }
        if (arg == "--threads") {
            // Full-consumption parse: "4x" or "1e1" must be a usage
            // error, not a silently truncated thread count.
            unsigned n = 0;
            auto [ptr, ec] = std::from_chars(
                value.data(), value.data() + value.size(), n);
            if (ec != std::errc() ||
                ptr != value.data() + value.size() || n == 0)
                return usage(argv[0], 2);
            opts.threads = n;
        } else if (arg == "--cache") {
            if (value == "on")
                opts.cache = true;
            else if (value == "off")
                opts.cache = false;
            else
                return usage(argv[0], 2);
        } else if (arg == "--cache-file") {
            if (value.empty())
                return usage(argv[0], 2);
            opts.cacheFile = value;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            return usage(argv[0], 2);
        }
    }

    JobQueue queue(opts);
    std::vector<Line> lines;
    std::string raw;
    while (std::getline(std::cin, raw)) {
        const std::string_view text = traq::trim(raw);
        if (text.empty() || text[0] == '#')
            continue;
        Line line;
        try {
            const traq::json::Value doc = traq::json::parse(text);
            if (doc.isArray()) {
                // Parse the whole batch before submitting anything
                // so a malformed element fails the line atomically.
                std::vector<traq::est::EstimateRequest> reqs;
                reqs.reserve(doc.asArray().size());
                for (const traq::json::Value &elem : doc.asArray())
                    reqs.push_back(traq::est::requestFromJson(elem));
                line.batch = true;
                line.ids = queue.submitBatch(std::move(reqs));
            } else {
                line.ids.push_back(
                    queue.submit(traq::est::requestFromJson(doc)));
            }
        } catch (const traq::FatalError &e) {
            line.error = e.what();
        }
        lines.push_back(std::move(line));
    }

    for (const Line &line : lines) {
        if (!line.error.empty()) {
            std::cout << "{\"error\":"
                      << traq::jsonQuote(line.error) << "}\n";
            continue;
        }
        if (line.batch) {
            std::cout << '[';
            for (std::size_t i = 0; i < line.ids.size(); ++i) {
                if (i)
                    std::cout << ',';
                std::cout << queue.wait(line.ids[i]).toJson();
            }
            std::cout << "]\n";
        } else {
            std::cout << queue.wait(line.ids[0]).toJson() << '\n';
        }
    }
    std::cout.flush();

    const traq::service::JobQueueStats stats = queue.stats();
    std::fprintf(stderr,
                 "traq_serve: %zu jobs, %zu evaluated, %zu cache "
                 "hits, %zu persistent hits, %zu failed, %u "
                 "threads\n",
                 stats.submitted, stats.evaluated, stats.cacheHits,
                 stats.persistentHits, stats.failed,
                 queue.threads());
    return 0;
}
