/**
 * @file
 * End-to-end sim -> fit flow through the estimator registry:
 *
 *   alpha_extraction [shots-per-point] [p-phys]
 *
 * 1. sweep the simulation-backed "mc-logical-error" estimator over a
 *    (distance, CNOTs-per-SE-round) grid — every point is a
 *    Monte-Carlo run of the wide-bit-plane frame sampler plus the
 *    matching decoder, executed on the SweepRunner worker pool;
 * 2. run the "mc-alpha" estimator, which performs the same grids
 *    internally and fits the Eq. (4) ansatz (Fig. 6(a)), printing
 *    the decoding factor alpha extracted from our own simulation
 *    next to the paper's reported alpha ~ 1/6.
 */

#include <cstdio>
#include <cstdlib>

#include "src/estimator/simulation.hh"
#include "src/estimator/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace traq;

    const double shots = argc > 1 ? std::atof(argv[1]) : 20000.0;
    const double p = argc > 2 ? std::atof(argv[2]) : 3e-3;

    std::printf("=== Monte-Carlo grid: mc-logical-error over "
                "(d, x) at p = %.1e ===\n\n", p);
    est::SweepRunner grid(est::EstimateRequest{
        "mc-logical-error",
        {{"p", p}, {"shots", shots}, {"cnotLayers", 8}}});
    grid.addAxis("distance", {3, 5})
        .addAxis("cnotsPerBatch", {1, 2, 4});
    est::SweepResult sr = grid.run();
    sr.toTable({"distance", "x", "pLogical", "pPerCnot", "hits",
                "shots", "avgDefects"})
        .print();
    std::printf("\n(%zu jobs, %u threads; deterministic for any "
                "thread count)\n",
                sr.results.size(), sr.threadsUsed);

    std::printf("\n=== mc-alpha: Eq. (4) fit to the grid above "
                "(plus memory anchors) ===\n\n");
    est::EstimateRequest fitReq{
        "mc-alpha", {{"p", p}, {"shots", shots}}};
    est::EstimateResult fit =
        est::makeEstimator("mc-alpha")->estimate(fitReq);
    std::printf("alpha      = %.3f   (paper MLE fit: 1/6 = 0.167)\n",
                fit.metric("alpha"));
    std::printf("Lambda     = %.2f   (matching decoder at p = %.1e; "
                "paper Lambda_MLE = 20 at p = 1e-3)\n",
                fit.metric("lambda"), p);
    std::printf("C          = %.3f\n", fit.metric("prefactorC"));
    std::printf("rms log residual = %.3f over %.0f points "
                "(%.0f shots total)\n",
                fit.metric("rmsLogResidual"),
                fit.metric("dataPoints"),
                fit.metric("totalShots"));
    std::printf("\nJSON: %s\n", est::toJson(fit).c_str());
    return 0;
}
