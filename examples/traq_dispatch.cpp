/**
 * @file
 * Multi-worker estimate sharder: traq_serve, horizontally.
 *
 * Reads the same line-delimited request stream traq_serve does and
 * shards it across N traq_serve subprocesses (src/service/
 * dispatcher.hh): round-robin over live workers, a bounded
 * per-worker inflight window for backpressure, requeue-on-worker-
 * loss with exactly-once output (index dedup).  Output mirrors
 * traq_serve's two modes:
 *
 *  - streaming (default): tagged {"index":N,...} lines in arrival
 *    order, N being the global input-line ordinal;
 *  - --ordered: untagged lines in input order — byte-identical to
 *    a single `traq_serve --ordered` over the same stream, for any
 *    --workers count (CI diffs exactly that).
 *
 * Worker knobs (--threads, --cache) are forwarded verbatim.  A
 * persistent cache file is per-worker: stores are single-writer
 * (common/castore.hh flocks them), so --cache-file PATH — or an
 * inherited TRAQ_CACHE_FILE — becomes PATH.w0, PATH.w1, ... one
 * store per worker, never one store shared by two processes.
 *
 * Environment: TRAQ_DISPATCH_WORKERS and TRAQ_DISPATCH_INFLIGHT
 * default --workers / --inflight; malformed values fail loudly.
 *
 *     $ ./build/traq_dispatch --workers 4 --ordered \
 *           < tests/data/service_requests.jsonl
 */

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits.h>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "src/common/assert.hh"
#include "src/common/castore.hh"
#include "src/common/strings.hh"
#include "src/service/dispatcher.hh"
#include "src/service/wire.hh"

namespace {

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [--workers N] [--inflight M] [--threads N]\n"
        "       [--cache on|off] [--cache-file PATH] [--ordered]\n"
        "       [--serve PATH]\n"
        "  Shards one request line per stdin line across N\n"
        "  traq_serve worker processes.  Default output is tagged\n"
        "  {\"index\":N,...} lines in arrival order; --ordered\n"
        "  emits untagged lines in input order, byte-identical to\n"
        "  a single traq_serve --ordered run.  --cache-file PATH\n"
        "  gives worker K the store PATH.wK (stores are\n"
        "  single-writer).  TRAQ_DISPATCH_WORKERS and\n"
        "  TRAQ_DISPATCH_INFLIGHT default --workers/--inflight.\n",
        argv0);
    return code;
}

/** Full-consumption unsigned parse; false on any malformed text. */
bool
parseUnsigned(const std::string &value, unsigned long &out)
{
    const auto [ptr, ec] = std::from_chars(
        value.data(), value.data() + value.size(), out);
    return ec == std::errc() &&
           ptr == value.data() + value.size();
}

/** Env-var unsigned knob: unset -> fallback; malformed -> fatal. */
unsigned long
envUnsigned(const char *name, unsigned long fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0')
        return fallback;
    unsigned long v = 0;
    if (!parseUnsigned(raw, v) || v == 0)
        TRAQ_FATAL(std::string(name) + " must be a positive "
                   "integer, got '" + raw + "'");
    return v;
}

/** Sibling of this executable, for the default traq_serve path. */
std::string
siblingPath(const char *name)
{
    char buf[PATH_MAX];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return name; // fall back to PATH lookup semantics of execve
    std::string self(buf, static_cast<std::size_t>(n));
    const auto slash = self.rfind('/');
    return self.substr(0, slash + 1) + name;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned long workerCount = 0;
    unsigned long inflight = 0;
    bool ordered = false;
    bool cacheOn = true;
    std::string cacheFile;
    std::string servePath;
    std::vector<std::string> forwarded;
    try {
        workerCount = envUnsigned("TRAQ_DISPATCH_WORKERS", 2);
        inflight = envUnsigned("TRAQ_DISPATCH_INFLIGHT", 32);
    } catch (const traq::FatalError &e) {
        std::fprintf(stderr, "traq_dispatch: %s\n", e.what());
        return 2;
    }
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string value;
        auto eq = arg.find('=');
        const bool wantsValue =
            arg == "--workers" || arg == "--inflight" ||
            arg == "--threads" || arg == "--cache" ||
            arg == "--cache-file" || arg == "--serve";
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
        } else if (wantsValue && i + 1 < argc) {
            value = argv[++i];
        }
        if (arg == "--workers" || arg == "--inflight") {
            unsigned long n = 0;
            if (!parseUnsigned(value, n) || n == 0)
                return usage(argv[0], 2);
            (arg == "--workers" ? workerCount : inflight) = n;
        } else if (arg == "--threads") {
            unsigned long n = 0;
            if (!parseUnsigned(value, n) || n == 0)
                return usage(argv[0], 2);
            forwarded.push_back("--threads");
            forwarded.push_back(value);
        } else if (arg == "--cache") {
            if (value != "on" && value != "off")
                return usage(argv[0], 2);
            cacheOn = value == "on";
            forwarded.push_back("--cache");
            forwarded.push_back(value);
        } else if (arg == "--cache-file") {
            if (value.empty())
                return usage(argv[0], 2);
            cacheFile = value;
        } else if (arg == "--serve") {
            if (value.empty())
                return usage(argv[0], 2);
            servePath = value;
        } else if (arg == "--ordered") {
            ordered = true;
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            return usage(argv[0], 2);
        }
    }

    // Same contradiction check the service facade makes, before
    // any worker spawns: a cache file (flag or TRAQ_CACHE_FILE
    // env) with the result cache off is a configuration lie.
    const std::string resolvedCache =
        traq::resolveCacheFile(cacheFile);
    if (!resolvedCache.empty() && !cacheOn) {
        std::fprintf(stderr,
                     "traq_dispatch: a cache file requires the "
                     "result cache (the store is its disk form; "
                     "refusing to silently ignore the path)\n");
        return 2;
    }

    traq::service::DispatcherOptions opts;
    opts.servePath =
        servePath.empty() ? siblingPath("traq_serve") : servePath;
    opts.workers = static_cast<unsigned>(workerCount);
    opts.inflight = inflight;
    opts.workerArgs = forwarded;
    if (!resolvedCache.empty()) {
        // One single-writer store per worker: PATH.wK.
        for (unsigned k = 0; k < opts.workers; ++k)
            opts.workerCacheFiles.push_back(
                resolvedCache + ".w" + std::to_string(k));
    }

    std::size_t submitted = 0;
    int exitCode = 0;
    {
        traq::service::Dispatcher dispatcher(opts);

        // Emitter: drain merged results concurrently with reading
        // stdin, so worker backpressure never deadlocks against an
        // unconsumed output stream.  Ordered mode holds a reorder
        // buffer bounded by workers x inflight.
        std::thread emitter([&] {
            try {
                std::size_t next = 0;
                std::map<std::size_t, std::string> hold;
                while (auto r = dispatcher.waitResult()) {
                    if (!ordered) {
                        std::string out =
                            traq::service::wire::tagLine(
                                r->index, r->payload) +
                            "\n";
                        std::fwrite(out.data(), 1, out.size(),
                                    stdout);
                        std::fflush(stdout);
                        continue;
                    }
                    hold.emplace(r->index,
                                 std::move(r->payload));
                    while (!hold.empty() &&
                           hold.begin()->first == next) {
                        std::string out =
                            std::move(hold.begin()->second) + "\n";
                        std::fwrite(out.data(), 1, out.size(),
                                    stdout);
                        std::fflush(stdout);
                        hold.erase(hold.begin());
                        ++next;
                    }
                }
            } catch (const traq::FatalError &e) {
                std::fprintf(stderr, "traq_dispatch: %s\n",
                             e.what());
                std::fflush(stderr);
                _exit(1);
            }
        });

        try {
            std::string raw;
            while (std::getline(std::cin, raw)) {
                const std::string_view text = traq::trim(raw);
                if (text.empty() || text[0] == '#')
                    continue;
                dispatcher.submit(submitted++,
                                  std::string(text));
            }
            dispatcher.closeSubmissions();
        } catch (const traq::FatalError &e) {
            std::fprintf(stderr, "traq_dispatch: %s\n", e.what());
            exitCode = 1;
        }
        if (exitCode != 0)
            _exit(exitCode); // emitter may be wedged; don't join
        emitter.join();
    }

    // Close the result stream before the summary, mirroring
    // traq_serve's stats-after-output contract.
    std::fflush(stdout);
    std::fclose(stdout);
    std::fprintf(stderr, "traq_dispatch: %zu jobs, %u workers, "
                         "%lu inflight/worker\n",
                 submitted, opts.workers, inflight);
    return exitCode;
}
