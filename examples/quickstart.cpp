/**
 * @file
 * Quickstart: estimate the resources for 2048-bit RSA factoring on
 * the transversal neutral-atom architecture with the paper's Table II
 * parameters, and compare against the lattice-surgery baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "src/common/table.hh"
#include "src/estimator/baselines.hh"
#include "src/estimator/shor.hh"

int
main()
{
    using namespace traq;

    // The paper's headline configuration (Table II).
    est::FactoringSpec spec;
    spec.nBits = 2048;
    spec.wExp = 3;
    spec.wMul = 4;
    spec.rsep = 96;

    est::FactoringReport rep = est::estimateFactoring(spec);

    std::printf("=== 2048-bit RSA on the transversal architecture "
                "===\n\n");
    Table t({"quantity", "value"});
    t.addRow({"exponent bits (Ekera-Hastad)",
              fmtF(rep.exponentBits, 0)});
    t.addRow({"lookup-additions", fmtE(rep.lookupAdditions, 3)});
    t.addRow({"CCZ states", fmtE(rep.cczTotal, 3)});
    t.addRow({"code distance", fmtF(rep.distance, 0)});
    t.addRow({"runway padding", fmtF(rep.rpad, 0)});
    t.addRow({"CCZ factories", fmtF(rep.factories, 0)});
    t.addRow({"time per lookup", fmtDuration(rep.timePerLookup)});
    t.addRow({"time per addition",
              fmtDuration(rep.timePerAddition)});
    t.addRow({"physical qubits", fmtSi(rep.physicalQubits, 1)});
    t.addRow({"run time", fmtDuration(rep.totalSeconds)});
    t.addRow({"space-time volume [qubit-s]",
              fmtE(rep.spacetimeVolume, 3)});
    t.addRow({"feasible", rep.feasible ? "yes" : "no"});
    t.print();

    std::printf("\n=== Lattice-surgery baseline (Gidney-Ekera, "
                "900 us QEC cycle) ===\n\n");
    est::GidneyEkeraSpec ge;
    ge.tCycle = 900e-6;
    ge.tReaction = 1e-3;
    est::BaselinePoint base = est::gidneyEkera(ge);
    Table b({"quantity", "value"});
    b.addRow({"physical qubits", fmtSi(base.physicalQubits, 1)});
    b.addRow({"run time", fmtDuration(base.seconds)});
    b.addRow({"speed-up of this work",
              fmtF(base.seconds / rep.totalSeconds, 1) + "x"});
    b.print();
    return 0;
}
