/**
 * @file
 * Tour of the unified Estimator API and the parallel SweepRunner:
 *
 *   sweep_api [kind]
 *
 * 1. make an estimator from the registry and serve one request;
 * 2. run a two-axis grid sweep on a worker pool (results are
 *    bit-identical for any thread count / TRAQ_THREADS setting);
 * 3. emit the same results as an aligned table, CSV and JSON.
 */

#include <cstdio>

#include "src/common/assert.hh"
#include "src/estimator/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace traq;

    std::printf("registered estimators:");
    for (const std::string &kind : est::registeredEstimators())
        std::printf(" %s", kind.c_str());
    std::printf("\n\n");

    const std::string kind = argc > 1 ? argv[1] : "factoring";
    std::unique_ptr<est::Estimator> estimator;
    try {
        estimator = est::makeEstimator(kind);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    // One request: named parameters in, named metrics out.
    est::EstimateRequest one{kind, {}};
    est::EstimateResult r = estimator->estimate(one);
    std::printf("single %s estimate -> %zu metrics, feasible=%s\n",
                kind.c_str(), r.metrics.size(),
                r.feasible ? "true" : "false");
    std::printf("%s\n\n", est::toJson(r).c_str());

    // A declarative grid: modulus size x runway separation.  The
    // runner expands the axes, executes on a worker pool and keeps
    // job order deterministic.
    est::SweepRunner sweep(est::EstimateRequest{"factoring", {}});
    sweep.addAxis("nBits", {1024, 2048})
        .addAxis("rsep", {96, 256, 1024});
    est::SweepResult sr = sweep.run();
    std::printf("sweep: %zu jobs, %zu evaluated, %zu memo hits, "
                "%u threads\n\n",
                sr.results.size(), sr.evaluated, sr.memoHits,
                sr.threadsUsed);

    sr.toTable({"nBits", "rsep", "physicalQubits", "totalSeconds",
                "spacetimeVolume", "feasible"})
        .print();

    std::printf("\nCSV:\n%s",
                sr.toCsv({"nBits", "rsep", "physicalQubits",
                          "totalSeconds", "spacetimeVolume"})
                    .c_str());
    return 0;
}
