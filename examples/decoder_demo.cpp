/**
 * @file
 * End-to-end decoding demo on the simulation substrate: build a
 * surface-code memory experiment and a two-patch transversal-CNOT
 * experiment, sample noisy shots with the frame simulator, decode
 * with exact matching / union-find, and print logical error rates
 * with Wilson confidence intervals.
 *
 *   decoder_demo [pPhys] [shots]
 */

#include <cstdio>
#include <cstdlib>

#include "src/codes/experiments.hh"
#include "src/common/table.hh"
#include "src/decoder/monte_carlo.hh"

int
main(int argc, char **argv)
{
    using namespace traq;

    double p = argc > 1 ? std::atof(argv[1]) : 0.003;
    std::uint64_t shots = argc > 2 ? std::atoll(argv[2]) : 20000;

    std::printf("=== Surface-code memory, p = %.1e, %llu shots "
                "===\n\n", p,
                static_cast<unsigned long long>(shots));
    Table t({"d", "decoder", "pL", "95% CI", "avg defects"});
    for (int d : {3, 5}) {
        codes::SurfaceCode sc(d);
        auto e = codes::buildMemory(sc, 'Z', d,
                                    codes::NoiseParams::uniform(p));
        for (auto kind : {decoder::DecoderKind::Fallback,
                          decoder::DecoderKind::UnionFind}) {
            decoder::McOptions opts;
            opts.shots = shots;
            opts.decoder = kind;
            auto res = decoder::runMonteCarlo(e, opts);
            t.addRow({std::to_string(d),
                      decoder::decoderKindName(kind),
                      fmtE(res.perObservable[0].mean, 2),
                      "[" + fmtE(res.perObservable[0].lo, 1) + ", " +
                          fmtE(res.perObservable[0].hi, 1) + "]",
                      fmtF(res.avgDefects, 1)});
        }
    }
    t.print();

    std::printf("\n=== Transversal CNOT (two patches, joint "
                "decoding) ===\n\n");
    Table c({"x (CNOT/round)", "pL (either logical)", "95% CI"});
    for (int x : {1, 2, 4}) {
        codes::TransversalCnotSpec spec;
        spec.distance = 3;
        spec.cnotLayers = 4;
        spec.cnotsPerBatch = x;
        spec.noise = codes::NoiseParams::uniform(p);
        auto e = codes::buildTransversalCnot(spec);
        decoder::McOptions opts;
        opts.shots = shots;
        auto res = decoder::runMonteCarlo(e, opts);
        c.addRow({std::to_string(x),
                  fmtE(res.anyObservable.mean, 2),
                  "[" + fmtE(res.anyObservable.lo, 1) + ", " +
                      fmtE(res.anyObservable.hi, 1) + "]"});
    }
    c.print();
    return 0;
}
